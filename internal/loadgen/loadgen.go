// Package loadgen drives concurrent HTTP load against a spannerd
// serving instance and reports throughput and latency histograms.
//
// A Scenario describes one workload shape: how many concurrent clients,
// how many requests each issues, what fraction are path queries versus
// distance queries, and whether a mutator client interleaves writes.
// Run executes the scenario against a base URL and classifies every
// response: 200s and typed load-shed 503s are expected outcomes under
// overload; anything else is a failure. A healthy server never fails a
// request — it answers, sheds, or (while stopping) reports a typed
// draining error, and the caller decides which classes the scenario
// tolerates.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Scenario is one workload configuration.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Requests is the number of requests each client issues.
	Requests int
	// PathEvery makes every k-th read a /v1/path query instead of
	// /v1/distance (0 = distance only).
	PathEvery int
	// MutateEvery makes client 0 POST an insert-points mutation every
	// k-th request (0 = read-only workload).
	MutateEvery int
	// Timeout is the per-request client-side timeout (default 10s).
	Timeout time.Duration
	// Seed derives each client's query sequence.
	Seed int64
}

// Result aggregates one scenario run.
type Result struct {
	Name      string  `json:"name"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"` // total attempted
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Mutations int     `json:"mutations"` // acknowledged mutations within OK
	Failures  int     `json:"failures"`  // responses outside {200, typed shed}
	ElapsedMS float64 `json:"elapsed_ms"`
	QPS       float64 `json:"qps"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// clientStats is one client's tally, merged after the run.
type clientStats struct {
	ok, shed, mutations, failures int
	latencies                     []float64 // ms, every classified response
	err                           error
}

// Run executes sc against the server at baseURL serving n vertices and
// returns the aggregated result. The context cancels the whole run.
func Run(ctx context.Context, baseURL string, n int, sc Scenario) (*Result, error) {
	if sc.Clients < 1 || sc.Requests < 1 {
		return nil, fmt.Errorf("loadgen: scenario %q needs clients and requests >= 1", sc.Name)
	}
	if n < 2 {
		return nil, fmt.Errorf("loadgen: scenario %q needs n >= 2, got %d", sc.Name, n)
	}
	timeout := sc.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	client := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        sc.Clients,
			MaxIdleConnsPerHost: sc.Clients,
		},
	}
	defer client.CloseIdleConnections()

	stats := make([]clientStats, sc.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < sc.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stats[c] = runClient(ctx, client, baseURL, n, sc, c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{Name: sc.Name, Clients: sc.Clients, Requests: sc.Clients * sc.Requests}
	var all []float64
	for i := range stats {
		if stats[i].err != nil {
			return nil, stats[i].err
		}
		res.OK += stats[i].ok
		res.Shed += stats[i].shed
		res.Mutations += stats[i].mutations
		res.Failures += stats[i].failures
		all = append(all, stats[i].latencies...)
	}
	res.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		res.QPS = float64(res.OK+res.Shed) / elapsed.Seconds()
	}
	res.P50MS = percentile(all, 50)
	res.P99MS = percentile(all, 99)
	res.MaxMS = percentile(all, 100)
	return res, nil
}

// runClient issues one client's request sequence. A transport-level
// error aborts the run (the server must always answer); an HTTP
// response is classified, never fatal.
func runClient(ctx context.Context, client *http.Client, baseURL string, n int, sc Scenario, id int) clientStats {
	var st clientStats
	rng := rand.New(rand.NewSource(sc.Seed + int64(id)*7919))
	for q := 0; q < sc.Requests; q++ {
		if ctx.Err() != nil {
			st.err = ctx.Err()
			return st
		}
		var (
			status int
			code   string
			err    error
			mut    bool
		)
		t0 := time.Now()
		switch {
		case id == 0 && sc.MutateEvery > 0 && q%sc.MutateEvery == sc.MutateEvery-1:
			mut = true
			pt := []float64{1e6 + float64(id*1000+q), 1e6}
			status, code, err = post(ctx, client, baseURL+"/v1/mutate",
				map[string]any{"op": "insert-points", "points": [][]float64{pt}})
		case sc.PathEvery > 0 && q%sc.PathEvery == sc.PathEvery-1:
			u, v := rng.Intn(n), rng.Intn(n)
			status, code, err = get(ctx, client, fmt.Sprintf("%s/v1/path?u=%d&v=%d", baseURL, u, v))
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			status, code, err = get(ctx, client, fmt.Sprintf("%s/v1/distance?u=%d&v=%d", baseURL, u, v))
		}
		if err != nil {
			st.err = fmt.Errorf("loadgen: client %d request %d: %w", id, q, err)
			return st
		}
		st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
		switch {
		case status == http.StatusOK:
			st.ok++
			if mut {
				st.mutations++
			}
		case status == http.StatusServiceUnavailable && code == "shed":
			st.shed++
		default:
			st.failures++
		}
	}
	return st
}

func get(ctx context.Context, client *http.Client, url string) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	return do(client, req)
}

func post(ctx context.Context, client *http.Client, url string, body any) (int, string, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(data)))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	return do(client, req)
}

// do executes the request and extracts the typed error code, if any.
func do(client *http.Client, req *http.Request) (int, string, error) {
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var body struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return resp.StatusCode, "", fmt.Errorf("decode %s: %w", req.URL.Path, err)
	}
	return resp.StatusCode, body.Code, nil
}

// percentile returns the p-th percentile of samples in ms (p in
// [0,100]; 100 = max). Returns 0 for an empty sample set.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(p / 100 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
