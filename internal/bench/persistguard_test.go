package bench

import (
	"context"
	"os"
	"testing"
)

// TestPersistWarmStartGuardN4000 is the regression gate for the
// durability layer: on the n=4000 Euclidean acceptance instance a warm
// start from a snapshot (read + decode + import + first query) must beat
// a from-scratch greedy build by at least 20x, and every loaded and
// recovered spanner must reproduce the original result digest exactly. A
// decoder that starts re-deriving bound rows, an import that re-runs the
// scan, or a replay that stops using the maintained fast path shows up
// here as a speedup collapse. Gated behind PERSIST_GUARD=1 because the
// n=4000 build takes a while; CI runs it as a dedicated step.
func TestPersistWarmStartGuardN4000(t *testing.T) {
	if os.Getenv("PERSIST_GUARD") != "1" {
		t.Skip("set PERSIST_GUARD=1 to run the n=4000 warm-start guard")
	}
	const floor = 20.0
	_, report, err := PersistBench(context.Background(), Full, 42, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var guard *PersistBenchCase
	for i := range report.Cases {
		if report.Cases[i].N == 4000 {
			guard = &report.Cases[i]
		}
	}
	if guard == nil {
		t.Fatalf("full-scale persist benchmark produced no n=4000 case")
	}
	if !guard.Identical {
		t.Fatalf("n=4000 loaded/recovered spanner diverged from the original result digest")
	}
	t.Logf("n=4000 build %.1f ms, save %.1f ms, load %.1f ms, warm-start %.1fx, recover %.1f ms",
		guard.BuildMedianMS, guard.SaveMedianMS, guard.LoadMedianMS, guard.WarmStartSpeedup, guard.RecoverMedianMS)
	if guard.WarmStartSpeedup < floor {
		t.Errorf("warm-start speedup %.2fx below the %.0fx regression floor", guard.WarmStartSpeedup, floor)
	}
}
