package persist

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
)

// --- deterministic test universes -----------------------------------------

// euclidPts is a 16-point 2D universe with repeated coordinates, so
// distance ties exercise the id-order tie-breaking the format must
// preserve.
func euclidPts() [][]float64 {
	pts := make([][]float64, 16)
	for i := range pts {
		pts[i] = []float64{float64(i % 4), float64(i / 4)}
	}
	return pts
}

// uniDist is a deterministic matrix universe over abstract ids with +Inf
// holes (unreachable pairs) and no zero distances.
func uniDist(a, b int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	if (a*b)%7 == 3 {
		return math.Inf(1)
	}
	return 1 + float64((a*31+b*17)%97)/13
}

// uniMetric restricts the matrix universe to a live id list.
type uniMetric struct{ ids []int }

func (m uniMetric) N() int { return len(m.ids) }
func (m uniMetric) Dist(i, j int) float64 {
	return uniDist(m.ids[i], m.ids[j])
}

func mustEuclid(t *testing.T, pts [][]float64) *metric.Euclidean {
	t.Helper()
	eu, err := metric.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	return eu
}

// buildMetricState drives a small maintained spanner through inserts,
// deletes, and a policy change, then exports it. euclid selects the
// coordinate universe, otherwise the +Inf matrix universe.
func buildMetricState(t *testing.T, euclid bool, opts core.MetricParallelOptions) *core.SpannerState {
	t.Helper()
	var inc *core.IncrementalSpanner
	var err error
	if euclid {
		pts := euclidPts()
		inc, err = core.NewIncrementalMetric(mustEuclid(t, pts[:8]), 1.6, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Insert(mustEuclid(t, pts[:11])); err != nil {
			t.Fatal(err)
		}
	} else {
		ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
		inc, err = core.NewIncrementalMetric(uniMetric{ids}, 1.6, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Insert(uniMetric{append(ids, 8, 9, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Delete(2, 9); err != nil {
		t.Fatal(err)
	}
	if err := inc.SetPolicy(core.IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
		t.Fatal(err)
	}
	st, err := inc.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func buildGraphState(t *testing.T, opts core.ParallelOptions) *core.SpannerState {
	t.Helper()
	g := graph.New(10)
	for i := 0; i < 9; i++ {
		g.MustAddEdge(i, i+1, float64(1+i%3))
	}
	g.MustAddEdge(0, 9, 7)
	inc, err := core.NewIncrementalGraph(g, 1.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.InsertEdges(graph.Edge{U: 2, V: 7, W: 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := inc.DeleteEdges(graph.Edge{U: 0, V: 9, W: 7}); err != nil {
		t.Fatal(err)
	}
	st, err := inc.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func stateDigest(t *testing.T, st *core.SpannerState, mopts core.MetricParallelOptions, gopts core.ParallelOptions) uint64 {
	t.Helper()
	inc, err := core.ImportIncremental(st, mopts, gopts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	return core.ResultDigest(res)
}

// --- snapshot format ------------------------------------------------------

// TestSnapshotRoundTrip: encode -> decode -> import is lossless for every
// mode, and the decoded state reproduces the original result digest.
func TestSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		st   *core.SpannerState
	}{
		{"euclid", buildMetricState(t, true, core.MetricParallelOptions{Workers: 1, Hubs: 3})},
		{"matrix", buildMetricState(t, false, core.MetricParallelOptions{Workers: 1, GuardRows: true})},
		{"graph", buildGraphState(t, core.ParallelOptions{Workers: 1, Hubs: 3})},
	}
	for _, tc := range cases {
		mopts := core.MetricParallelOptions{Workers: 1, Hubs: len(tc.st.Hubs)}
		gopts := core.ParallelOptions{Workers: 1, Hubs: len(tc.st.Hubs)}
		want := stateDigest(t, tc.st, mopts, gopts)
		data := EncodeSnapshot(tc.st, 42)
		if !bytes.Equal(data, EncodeSnapshot(tc.st, 42)) {
			t.Fatalf("%s: encoding is not deterministic", tc.name)
		}
		st2, opSeq, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if opSeq != 42 {
			t.Fatalf("%s: opSeq %d, want 42", tc.name, opSeq)
		}
		if got := stateDigest(t, st2, mopts, gopts); got != want {
			t.Fatalf("%s: decoded digest %x, want %x", tc.name, got, want)
		}
	}
}

// TestSnapshotVersionSkew: a foreign format version is refused with
// ErrUnsupportedVersion before any of the file is trusted.
func TestSnapshotVersionSkew(t *testing.T) {
	data := EncodeSnapshot(buildMetricState(t, true, core.MetricParallelOptions{Workers: 1}), 0)
	bad := append([]byte(nil), data...)
	bad[8] = 99
	if _, _, err := DecodeSnapshot(bad); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("version 99: got %v, want ErrUnsupportedVersion", err)
	}
	if _, _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestSnapshotCorruption: truncations and bit flips are detected by the
// digests and surface as ErrCorruptState naming the damaged section.
func TestSnapshotCorruption(t *testing.T) {
	data := EncodeSnapshot(buildMetricState(t, true, core.MetricParallelOptions{Workers: 1, Hubs: 3}), 7)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		mention string
	}{
		{"empty", func(b []byte) []byte { return nil }, "header"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "magic"},
		{"truncated table", func(b []byte) []byte { return b[:20] }, "table"},
		{"header flip", func(b []byte) []byte { b[13] ^= 1; return b }, ""},
		{"payload flip", func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }, "section"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "section"},
	}
	for _, tc := range cases {
		b := tc.mutate(append([]byte(nil), data...))
		_, _, err := DecodeSnapshot(b)
		if !errors.Is(err, core.ErrCorruptState) {
			t.Errorf("%s: got %v, want ErrCorruptState", tc.name, err)
			continue
		}
		if tc.mention != "" && !strings.Contains(err.Error(), tc.mention) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.mention)
		}
	}
}

// TestSnapshotGolden guards the on-disk format against silent drift: the
// checked-in golden files must decode, import, and re-encode to their
// exact bytes. GOLDEN_REWRITE=1 refreshes them after a deliberate format
// change (which must also bump the version).
func TestSnapshotGolden(t *testing.T) {
	cases := []struct {
		file string
		st   func() *core.SpannerState
	}{
		{"snap_metric_v1.bin", func() *core.SpannerState {
			return buildMetricState(t, true, core.MetricParallelOptions{Workers: 1, Hubs: 3})
		}},
		{"snap_matrix_v1.bin", func() *core.SpannerState {
			return buildMetricState(t, false, core.MetricParallelOptions{Workers: 1})
		}},
		{"snap_graph_v1.bin", func() *core.SpannerState {
			return buildGraphState(t, core.ParallelOptions{Workers: 1, Hubs: 3})
		}},
	}
	for _, tc := range cases {
		path := filepath.Join("testdata", tc.file)
		want := EncodeSnapshot(tc.st(), 11)
		if os.Getenv("GOLDEN_REWRITE") == "1" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := WriteFileAtomic(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		disk, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with GOLDEN_REWRITE=1 to create)", tc.file, err)
		}
		if !bytes.Equal(disk, want) {
			t.Errorf("%s: live encoding differs from golden bytes — format drift without a version bump", tc.file)
		}
		st, opSeq, err := DecodeSnapshot(disk)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.file, err)
		}
		if opSeq != 11 {
			t.Errorf("%s: opSeq %d, want 11", tc.file, opSeq)
		}
		if _, err := core.ImportIncremental(st, core.MetricParallelOptions{Workers: 1, Hubs: len(st.Hubs)}, core.ParallelOptions{Workers: 1, Hubs: len(st.Hubs)}); err != nil {
			t.Errorf("%s: import: %v", tc.file, err)
		}
	}
}

// TestWalHeaderRoundTrip covers the WAL header frame, its binding fields,
// and its version gate.
func TestWalHeaderRoundTrip(t *testing.T) {
	hdr := encodeWalHeader(7, 0xdeadbeefcafef00d)
	gen, digest, err := decodeWalHeader(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 || digest != 0xdeadbeefcafef00d {
		t.Fatalf("decoded gen %d digest %x", gen, digest)
	}
	bad := append([]byte(nil), hdr...)
	bad[8] = 2
	if _, _, err := decodeWalHeader(bad); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("version skew: got %v", err)
	}
	flip := append([]byte(nil), hdr...)
	flip[20] ^= 1
	if _, _, err := decodeWalHeader(flip); !errors.Is(err, core.ErrCorruptState) {
		t.Fatalf("flipped header: got %v", err)
	}
}

// TestWalRecordTornTail: scanWal keeps exactly the valid record prefix —
// torn length fields, torn payloads, and flipped bytes all end the scan
// at the same byte offset a crash would have made durable.
func TestWalRecordTornTail(t *testing.T) {
	ops := []walOp{
		{kind: walInsertPoints, k: 1, coords: []float64{1, 2}},
		{kind: walDelete, dense: []int{0}},
		{kind: walFlush},
		{kind: walPolicy, policy: core.IncrementalPolicy{CoalesceUntilQuery: true, MinBatch: 4}},
		{kind: walInsertEdges, edges: []graph.Edge{{U: 0, V: 1, W: 1.5}}},
	}
	file := encodeWalHeader(3, 99)
	offsets := []int{len(file)}
	for _, op := range ops {
		file = append(file, encodeWalRecord(op)...)
		offsets = append(offsets, len(file))
	}
	for cut := 0; cut <= len(file); cut++ {
		data := file[:cut]
		if cut < walHeaderLen {
			if _, _, _, _, err := scanWal(data); !errors.Is(err, core.ErrCorruptState) {
				t.Fatalf("cut %d: got %v, want ErrCorruptState", cut, err)
			}
			continue
		}
		gen, digest, recs, validLen, err := scanWal(data)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if gen != 3 || digest != 99 {
			t.Fatalf("cut %d: header fields %d/%d", cut, gen, digest)
		}
		wantRecs := 0
		for wantRecs+1 < len(offsets) && offsets[wantRecs+1] <= cut {
			wantRecs++
		}
		if len(recs) != wantRecs || validLen != int64(offsets[wantRecs]) {
			t.Fatalf("cut %d: %d records valid to %d, want %d to %d", cut, len(recs), validLen, wantRecs, offsets[wantRecs])
		}
	}
	// A flipped payload byte ends the prefix at that record even though
	// the bytes are all present.
	flip := append([]byte(nil), file...)
	flip[offsets[2]+walRecHdrLen] ^= 1
	_, _, recs, validLen, err := scanWal(flip)
	if err != nil || len(recs) != 2 || validLen != int64(offsets[2]) {
		t.Fatalf("flipped record: %d records to %d (err %v)", len(recs), validLen, err)
	}
}

// TestWalPayloadRoundTrip: every op kind survives encode -> frame ->
// decode with its fields intact.
func TestWalPayloadRoundTrip(t *testing.T) {
	ops := []walOp{
		{kind: walInsertPoints, k: 2, coords: []float64{1, 2, 3, 4}},
		{kind: walInsertMatrix, k: 2, base: 3, rows: [][]float64{{1, 2, 3}, {4, 5, 6, math.Inf(1)}}},
		{kind: walDelete, dense: []int{4, 0, 2}},
		{kind: walInsertEdges, edges: []graph.Edge{{U: 1, V: 2, W: 0.5}, {U: 0, V: 3, W: 2}}},
		{kind: walDeleteEdges, edges: []graph.Edge{{U: 1, V: 2, W: 0.5}}},
		{kind: walFlush},
		{kind: walPolicy, policy: core.IncrementalPolicy{CoalesceUntilQuery: true, MinBatch: 9}},
	}
	for _, op := range ops {
		rec := encodeWalRecord(op)
		payload := rec[walRecHdrLen:]
		if fnv1a(payload) != leU64(rec[4:]) {
			t.Fatalf("op %d: frame digest wrong", op.kind)
		}
		got, err := decodeWalPayload(payload, 2)
		if err != nil {
			t.Fatalf("op %d: decode: %v", op.kind, err)
		}
		if got.kind != op.kind || got.k != op.k || got.base != op.base ||
			len(got.coords) != len(op.coords) || len(got.dense) != len(op.dense) ||
			len(got.edges) != len(op.edges) || got.policy != op.policy {
			t.Fatalf("op %d: round trip mismatch: %+v vs %+v", op.kind, got, op)
		}
	}
	if _, err := decodeWalPayload([]byte{200}, 2); !errors.Is(err, core.ErrCorruptState) {
		t.Fatalf("unknown op kind: got %v", err)
	}
	if _, err := decodeWalPayload(nil, 2); !errors.Is(err, core.ErrCorruptState) {
		t.Fatalf("empty payload: got %v", err)
	}
}
