package persist

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestPersistAppendPoints checks the coordinate-level insertion path is
// bit-identical to the union-metric Insert path (same digest, same
// OpSeq), rejects malformed rows without logging them, and survives a
// close/reopen round trip.
func TestPersistAppendPoints(t *testing.T) {
	o := Options{Metric: core.MetricParallelOptions{Workers: 1}}
	pts := euclidPts()

	dirA, dirB := t.TempDir(), t.TempDir()
	dA := newEuclidDurable(t, dirA, o)
	defer dA.Close()
	dB := newEuclidDurable(t, dirB, o)

	if err := dA.Insert(mustEuclid(t, pts[:11])); err != nil {
		t.Fatal(err)
	}
	if err := dB.AppendPoints(pts[8:11]); err != nil {
		t.Fatal(err)
	}
	if a, b := mustDigest(t, dA), mustDigest(t, dB); a != b {
		t.Fatalf("AppendPoints digest %x, Insert digest %x", b, a)
	}
	if dA.OpSeq() != dB.OpSeq() {
		t.Fatalf("OpSeq diverged: Insert %d, AppendPoints %d", dA.OpSeq(), dB.OpSeq())
	}

	// Rejections validate before logging: OpSeq must not move.
	before := dB.OpSeq()
	for name, rows := range map[string][][]float64{
		"wrong-dim":  {{1, 2, 3}},
		"nan":        {{math.NaN(), 0}},
		"inf":        {{0, math.Inf(1)}},
		"mixed-good": {pts[11], {9, math.NaN()}},
	} {
		if err := dB.AppendPoints(rows); !errors.Is(err, graph.ErrInvalidInput) {
			t.Fatalf("%s: %v, want ErrInvalidInput", name, err)
		}
	}
	if err := dB.AppendPoints(nil); err != nil {
		t.Fatalf("empty AppendPoints: %v", err)
	}
	if dB.OpSeq() != before {
		t.Fatalf("rejected AppendPoints advanced OpSeq %d -> %d", before, dB.OpSeq())
	}

	want := mustDigest(t, dB)
	if err := dB.Close(); err != nil {
		t.Fatal(err)
	}
	dB2, err := Open(dirB, o)
	if err != nil {
		t.Fatal(err)
	}
	defer dB2.Close()
	if got := mustDigest(t, dB2); got != want {
		t.Fatalf("reopened digest %x, want %x", got, want)
	}
}
