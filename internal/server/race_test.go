package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestServeSnapshotSwapRace is the -race regression for the read/flush
// audit: concurrent readers must never observe engine internals mid
// Flush, because the atomic snapshot swap is the only cross-goroutine
// handoff — readers query only published (*Result, *Graph) pairs while
// the writer mutates the engine and publishes new versions. Run under
// the race detector (CI matches Serve|Swap), any read touching writer
// state shows up as a data race here.
func TestServeSnapshotSwapRace(t *testing.T) {
	const n = 25
	s, ts := newTestServer(t, n, func(cfg *Config) {
		cfg.MaxInflight = 8
	})

	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for q := 0; ; q++ {
				select {
				case <-stopReads:
					return
				default:
				}
				var url string
				switch q % 3 {
				case 0:
					url = fmt.Sprintf("%s/v1/distance?u=%d&v=%d", ts.URL, (q+r)%n, (q*5+r)%n)
				case 1:
					url = fmt.Sprintf("%s/v1/path?u=%d&v=%d", ts.URL, (q*3+r)%n, (q+2*r)%n)
				default:
					url = ts.URL + "/v1/stats"
				}
				body, status := getJSON(t, url)
				if status != http.StatusOK && body["code"] != codeShed {
					t.Errorf("reader %d: status %d body %v", r, status, body)
					return
				}
			}
		}(r)
	}

	// The writer interleaves inserts, deletes, and checkpoints — every
	// publish swaps a snapshot under the readers.
	for m := 0; m < 10; m++ {
		var body map[string]any
		var status int
		switch m % 3 {
		case 0:
			body, status = postJSON(t, ts.URL+"/v1/mutate",
				mutateRequest{Op: "insert-points", Points: [][]float64{{2000 + float64(m), 2000}}})
		case 1:
			body, status = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "delete-points", Ids: []int{m}})
		default:
			body, status = postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
		}
		if status != http.StatusOK {
			t.Fatalf("writer op %d: status %d body %v", m, status, body)
		}
	}
	close(stopReads)
	wg.Wait()

	if v := s.snap.Load().version; v < 11 {
		t.Fatalf("snapshot version %d after 10 writer ops, want >= 11", v)
	}
}
