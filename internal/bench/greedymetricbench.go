package bench

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/persist"
)

// The greedy-metric benchmark compares the serial cached-bound metric scan
// (core.GreedyMetricFastSerial) against the batched-parallel metric engine
// (core.GreedyMetricFastParallel, concurrent bound-matrix row refreshes)
// and emits a machine-readable report, following the same repeated-run
// discipline as GreedyBench: every timing is measured reps times (>= 3),
// the median is reported alongside the raw samples, run-to-run spread is
// recorded, and the engines' outputs are compared edge-for-edge before any
// speedup is claimed.

// GreedyMetricBenchCase is the report for one metric instance.
type GreedyMetricBenchCase struct {
	// Kind names the metric family: "euclidean" or "graph-induced".
	Kind               string    `json:"kind"`
	N                  int       `json:"n"`
	Pairs              int       `json:"pairs"`
	Stretch            float64   `json:"stretch"`
	SpannerEdges       int       `json:"spanner_edges"`
	SequentialMS       []float64 `json:"sequential_ms"`
	SequentialMedianMS float64   `json:"sequential_median_ms"`
	SequentialSpread   float64   `json:"sequential_spread_pct"`
	// SequentialPeakAllocBytes / SequentialTotalAllocBytes are the heap
	// figures of the serial reference — the materialized-pairs path: all
	// n(n-1)/2 pairs built and globally sorted plus the dense bound
	// matrix — measured in a dedicated non-timed pass.
	SequentialPeakAllocBytes  uint64                   `json:"sequential_peak_alloc_bytes"`
	SequentialTotalAllocBytes uint64                   `json:"sequential_total_alloc_bytes"`
	Parallel                  []GreedyBenchParallelRun `json:"parallel"`
	// PeakAllocRatio is SequentialPeakAllocBytes over the smallest
	// parallel-run peak: how many times less memory the streamed
	// bucketed supply plus sparse bound rows need than the
	// materialize-then-sort pipeline for the same (bit-identical)
	// spanner.
	PeakAllocRatio float64 `json:"peak_alloc_ratio"`
	// IdenticalOutput records that every parallel run reproduced the
	// sequential engine's edge sequence and weight exactly.
	IdenticalOutput bool `json:"identical_output"`
}

// GreedyMetricBenchReport is the top-level BENCH_greedymetric.json document.
type GreedyMetricBenchReport struct {
	GoVersion  string                  `json:"go_version"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Date       string                  `json:"date"`
	Reps       int                     `json:"reps"`
	Cases      []GreedyMetricBenchCase `json:"cases"`
}

// GreedyMetricBench times serial vs parallel cached-bound greedy
// construction on Euclidean and graph-induced metrics and returns both a
// printable table and the JSON report. workers > 0 restricts the parallel
// sweep to that single worker count (the -workers flag of cmd/spannerbench);
// workers <= 0 sweeps {1, 4, GOMAXPROCS}. Small scale runs n≈200
// instances; Full adds the n=1000 Euclidean instance the acceptance
// benchmark tracks. Cancelling ctx aborts the run between repetitions (and
// mid-scan inside the parallel engine) with a typed error.
func GreedyMetricBench(ctx context.Context, scale Scale, seed int64, reps, workers int) (*Table, *GreedyMetricBenchReport, error) {
	if reps < 3 {
		reps = 3
	}
	tab := &Table{
		Title:  "GREEDY-METRIC-BENCH: serial vs batched-parallel cached-bound metric engine",
		Header: []string{"kind", "n", "pairs", "engine", "workers", "median ms", "spread %", "speedup", "peak MB", "identical"},
		Caption: "Serial = materialized sorted pair list + dense bound matrix, one-row-at-a-time refreshes;\n" +
			"parallel = streamed weight-bucketed candidate supply + sparse bound rows, concurrent row\n" +
			"refreshes against a frozen snapshot. Outputs compared edge-for-edge; peak MB is the heap\n" +
			"high-water mark of a dedicated non-timed pass.",
	}
	report := &GreedyMetricBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Reps:       reps,
	}
	type instance struct {
		kind string
		m    metric.Metric
		t    float64
	}
	rng := rand.New(rand.NewSource(seed))
	instances := []instance{
		{"euclidean", metric.MustEuclidean(gen.UniformPoints(rng, 220, 2)), 1.5},
	}
	induced, err := metric.FromGraph(gen.ErdosRenyi(rng, 160, 0.1, 0.5, 10))
	if err != nil {
		return nil, nil, err
	}
	instances = append(instances, instance{"graph-induced", induced, 3})
	if scale == Full {
		// The n=4000 instance is the memory acceptance case: the
		// materialized-pairs path fronts ~8M sorted pairs (~190 MB) plus
		// a 128 MB dense bound matrix, while the streamed supply plus
		// sparse rows must come in at least 5x below that peak.
		instances = append(instances,
			instance{"euclidean", metric.MustEuclidean(gen.UniformPoints(rng, 1000, 2)), 1.5},
			instance{"euclidean", metric.MustEuclidean(gen.UniformPoints(rng, 4000, 2)), 1.5})
	}
	workerSets := []int{1, 4, runtime.GOMAXPROCS(0)}
	if workers > 0 {
		workerSets = []int{workers}
	}
	for _, inst := range instances {
		n := inst.m.N()
		c := GreedyMetricBenchCase{
			Kind: inst.kind, N: n, Pairs: n * (n - 1) / 2,
			Stretch: inst.t, IdenticalOutput: true,
		}
		var ref *core.Result
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			res, err := core.GreedyMetricFastSerial(inst.m, inst.t)
			if err != nil {
				return nil, nil, err
			}
			c.SequentialMS = append(c.SequentialMS, time.Since(start).Seconds()*1000)
			ref = res
		}
		c.SpannerEdges = ref.Size()
		c.SequentialMedianMS = median(c.SequentialMS)
		c.SequentialSpread = spreadPct(c.SequentialMS)
		seqPeak, seqTotal, err := measureAlloc(func() error {
			_, err := core.GreedyMetricFastSerial(inst.m, inst.t)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		c.SequentialPeakAllocBytes, c.SequentialTotalAllocBytes = seqPeak, seqTotal
		tab.AddRow(inst.kind, itoa(n), itoa(c.Pairs), "serial", "-",
			f2(c.SequentialMedianMS), f2(c.SequentialSpread), "1.00",
			mb(c.SequentialPeakAllocBytes), "ref")

		seen := map[int]bool{}
		for _, w := range workerSets {
			if seen[w] {
				continue
			}
			seen[w] = true
			run := GreedyBenchParallelRun{Workers: w}
			identical := true
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := core.GreedyMetricFastParallelOpts(inst.m, inst.t, core.MetricParallelOptions{Workers: w, Ctx: ctx})
				if err != nil {
					return nil, nil, err
				}
				run.MS = append(run.MS, time.Since(start).Seconds()*1000)
				identical = identical && sameOutput(ref, res)
			}
			run.MedianMS = median(run.MS)
			run.SpreadPct = spreadPct(run.MS)
			run.Speedup = c.SequentialMedianMS / run.MedianMS
			peak, totalAlloc, err := measureAlloc(func() error {
				_, err := core.GreedyMetricFastParallelOpts(inst.m, inst.t, core.MetricParallelOptions{Workers: w, Ctx: ctx})
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			run.PeakAllocBytes, run.TotalAllocBytes = peak, totalAlloc
			c.IdenticalOutput = c.IdenticalOutput && identical
			c.Parallel = append(c.Parallel, run)
			tab.AddRow(inst.kind, itoa(n), itoa(c.Pairs), "parallel", itoa(w),
				f2(run.MedianMS), f2(run.SpreadPct), f2(run.Speedup),
				mb(run.PeakAllocBytes), yesNo(identical))
		}
		for _, run := range c.Parallel {
			if run.PeakAllocBytes == 0 {
				continue
			}
			if r := float64(c.SequentialPeakAllocBytes) / float64(run.PeakAllocBytes); r > c.PeakAllocRatio {
				c.PeakAllocRatio = r
			}
		}
		report.Cases = append(report.Cases, c)
	}
	return tab, report, nil
}

// WriteJSON writes the report to path, pretty-printed, atomically
// (temp file + rename), so an interrupted run never damages a previous
// report at the same path.
func (r *GreedyMetricBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
