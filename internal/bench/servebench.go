package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/loadgen"
	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/server"
)

// The serve benchmark measures spannerd's serving layer end to end over
// real HTTP: read throughput and tail latency against the RCU snapshot,
// the cost of interleaved durable mutations (each one a WAL append, an
// engine flush, and a snapshot republish under live readers), and the
// overload contract — a deliberately undersized server must shed excess
// load with typed 503s while every admitted request still succeeds. The
// acceptance property is zero shed-free failures: a response outside
// {200, typed shed} in any scenario is a serving-layer bug.

// ServeBenchCase is the report for one scenario.
type ServeBenchCase struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"` // vertices served
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"` // total attempted
	// Inflight/Queue are the admission-control limits in force.
	Inflight int `json:"inflight"`
	Queue    int `json:"queue"`
	// Outcome classes; Failures must be zero in every scenario.
	OK        int `json:"ok"`
	Shed      int `json:"shed"`
	Mutations int `json:"mutations"`
	Failures  int `json:"failures"`
	// Throughput and latency over classified responses.
	QPS   float64 `json:"qps"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// ServeBenchReport is the top-level BENCH_serve.json document.
type ServeBenchReport struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Date       string           `json:"date"`
	Workers    int              `json:"workers"`
	Cases      []ServeBenchCase `json:"cases"`
}

// WriteJSON writes the report to path, pretty-printed, atomically.
func (r *ServeBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// serveInstance is one live served spanner: a durable in a temp dir
// behind a real TCP listener.
type serveInstance struct {
	srv  *server.Server
	hs   *http.Server
	url  string
	dir  string
	done chan error
}

func startServeInstance(ctx context.Context, n, workers, inflight, queue int, seed int64, hooks server.Hooks) (*serveInstance, error) {
	dir, err := os.MkdirTemp("", "servebench-*")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pts := gen.UniformPoints(rng, n, 2)
	o := persist.Options{Metric: core.MetricParallelOptions{Workers: workers, Ctx: ctx}}
	inc, err := core.NewIncrementalMetric(metric.MustEuclidean(pts), 1.5, o.Metric)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	d, err := persist.Create(dir, inc, o)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	s, err := server.New(server.Config{
		Durable:        d,
		MaxInflight:    inflight,
		QueueDepth:     queue,
		RequestTimeout: 30 * time.Second,
		MutateTimeout:  60 * time.Second,
		DrainGrace:     5 * time.Second,
		Hooks:          hooks,
	})
	if err != nil {
		d.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Drain(context.Background())
		os.RemoveAll(dir)
		return nil, err
	}
	in := &serveInstance{
		srv:  s,
		hs:   &http.Server{Handler: s.Handler()},
		url:  "http://" + ln.Addr().String(),
		dir:  dir,
		done: make(chan error, 1),
	}
	go func() { in.done <- in.hs.Serve(ln) }()
	return in, nil
}

func (in *serveInstance) stop() error {
	derr := in.srv.Drain(context.Background())
	serr := in.hs.Shutdown(context.Background())
	<-in.done
	os.RemoveAll(in.dir)
	if derr != nil {
		return derr
	}
	return serr
}

// ServeBench runs the serving-layer benchmark. Small serves n=300 with
// light load; Full serves n=1500 with heavier fan-in. Each scale runs a
// read-only scenario, a mixed read/mutate scenario, and an overload
// scenario against a deliberately undersized admission configuration.
func ServeBench(ctx context.Context, scale Scale, seed int64, workers int) (*Table, *ServeBenchReport, error) {
	if workers <= 0 {
		workers = 1
	}
	n, clients, requests := 300, 8, 150
	if scale == Full {
		n, clients, requests = 1500, 16, 400
	}
	tab := &Table{
		Title:  "SERVE-BENCH: spannerd serving layer over live HTTP",
		Header: []string{"scenario", "clients", "requests", "ok", "shed", "fail", "qps", "p50 ms", "p99 ms"},
		Caption: "Read scenarios hit /v1/distance and /v1/path against the RCU snapshot; the mixed\n" +
			"scenario interleaves durable insert mutations (WAL append + flush + republish under\n" +
			"live readers); overload drives a 2-slot/2-queue server with a simulated 2ms backend\n" +
			"far past capacity, where the contract is typed shedding — fail counts responses\n" +
			"outside {200, typed shed} and must be zero everywhere.",
	}
	report := &ServeBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Workers:    workers,
	}

	// Scenarios 1+2 share a normally-sized server; overload gets a
	// deliberately tiny one so shedding is guaranteed.
	main, err := startServeInstance(ctx, n, workers, 0, 0, seed, server.Hooks{})
	if err != nil {
		return nil, nil, err
	}
	for _, sc := range []loadgen.Scenario{
		{Name: "read-only", Clients: clients, Requests: requests, PathEvery: 4, Seed: seed + 1},
		{Name: "read+mutate", Clients: clients, Requests: requests, PathEvery: 4, MutateEvery: 20, Seed: seed + 2},
	} {
		res, err := loadgen.Run(ctx, main.url, n, sc)
		if err != nil {
			main.stop()
			return nil, nil, err
		}
		addServeCase(tab, report, res, n, 64, 128)
	}
	if err := main.stop(); err != nil {
		return nil, nil, fmt.Errorf("servebench: drain main instance: %w", err)
	}

	// Overload: 2 admission slots, a 2-deep queue, and a simulated 2ms
	// backend service time per admitted read (queries on small instances
	// finish in microseconds, which no client fan-in can saturate on a
	// small host — the hook models the slow-backend regime the shedding
	// contract exists for).
	tiny, err := startServeInstance(ctx, n, workers, 2, 2, seed, server.Hooks{
		OnAdmit: func() { time.Sleep(2 * time.Millisecond) },
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := loadgen.Run(ctx, tiny.url, n, loadgen.Scenario{
		Name: "overload", Clients: 4 * clients, Requests: requests / 4, Seed: seed + 3,
	})
	if err != nil {
		tiny.stop()
		return nil, nil, err
	}
	addServeCase(tab, report, res, n, 2, 2)
	if err := tiny.stop(); err != nil {
		return nil, nil, fmt.Errorf("servebench: drain overload instance: %w", err)
	}
	return tab, report, nil
}

func addServeCase(tab *Table, report *ServeBenchReport, res *loadgen.Result, n, inflight, queue int) {
	report.Cases = append(report.Cases, ServeBenchCase{
		Scenario: res.Name, N: n,
		Clients: res.Clients, Requests: res.Requests,
		Inflight: inflight, Queue: queue,
		OK: res.OK, Shed: res.Shed, Mutations: res.Mutations, Failures: res.Failures,
		QPS: res.QPS, P50MS: res.P50MS, P99MS: res.P99MS, MaxMS: res.MaxMS,
	})
	tab.AddRow(res.Name,
		fmt.Sprintf("%d", res.Clients),
		fmt.Sprintf("%d", res.Requests),
		fmt.Sprintf("%d", res.OK),
		fmt.Sprintf("%d", res.Shed),
		fmt.Sprintf("%d", res.Failures),
		fmt.Sprintf("%.0f", res.QPS),
		fmt.Sprintf("%.2f", res.P50MS),
		fmt.Sprintf("%.2f", res.P99MS))
}
