// Package spanner is the public API of this repository: a Go implementation
// of the greedy spanner and its companions from "The Greedy Spanner is
// Existentially Optimal" (Filtser & Solomon, PODC 2016).
//
// The package exposes three families of constructions:
//
//   - Greedy / GreedyParallel / GreedyMetric / GreedyMetricFast /
//     GreedyMetricParallel — Algorithm 1 of the paper: the greedy
//     t-spanner for weighted graphs and finite metric spaces,
//     existentially optimal in size and lightness (Theorems 4 and 5).
//     Both engines share the batched-certification architecture: sorted
//     candidates are scanned in adaptive batches, skips are certified
//     concurrently against a frozen spanner snapshot (bounded
//     bidirectional Dijkstra on graphs; cached bound-row refreshes on
//     metrics), and the survivors are re-checked serially in greedy
//     order — so parallel output is deterministic and bit-identical to
//     the sequential scan while construction runs across all cores.
//     Candidates are streamed from a weight-bucketed CandidateSource
//     (grid-bucketed on Euclidean metrics) and metric distance bounds
//     live in sparse rows allocated on first refresh, so memory scales
//     with the active weight bucket and the spanner's working set
//     instead of the Θ(n²) materialize-then-sort pipeline; see
//     GreedyMetricParallelOpts and GreedyParallelOpts for the knobs.
//     The Hubs option adds the hub-label certification fast path:
//     maintained landmark distance arrays over the growing spanner
//     answer most skip certifications in O(k) with no search at all —
//     hub bounds are upper bounds, so output stays bit-identical with
//     hubs on or off.
//   - NewIncremental / NewIncrementalGraph — the fully dynamic
//     maintained greedy spanner: point insertions and deletions
//     (metrics) and edge insertions and deletions (graphs) after the
//     initial build, each batch replayed from the first scan position it
//     disturbs — deletions rebase cached state backward onto
//     checkpointed snapshots — with the result bit-identical to a
//     from-scratch greedy build on the surviving input.
//   - Save / Load / OpenDurable — the durability layer for the
//     maintained spanner: versioned, digest-guarded binary snapshots of
//     the full dynamic state plus a write-ahead log of dynamic
//     operations, so a process can stop (or crash) at any instant and
//     resume with a state bit-identical to the uninterrupted run.
//   - ApproxGreedy — the O(n log n)-style approximate-greedy algorithm for
//     doubling metrics (Section 5, Theorem 6), with constant lightness and
//     degree.
//   - Verification utilities — stretch, lightness, MST containment, and the
//     Lemma 3 self-spanner property, so downstream users can audit any
//     spanner against the paper's definitions.
//
// Quick start:
//
//	g := spanner.NewGraph(4)
//	g.MustAddEdge(0, 1, 1)
//	g.MustAddEdge(1, 2, 1)
//	g.MustAddEdge(2, 3, 1)
//	g.MustAddEdge(3, 0, 1)
//	res, err := spanner.Greedy(g, 3)
//	// res.Edges is the greedy 3-spanner edge set.
//
// Vertices are dense integers in [0, n); weights are positive float64s.
package spanner

import (
	"errors"
	"math/rand"
	"os"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/verify"
)

// Graph re-exports the weighted undirected graph type used across the API.
type Graph = graph.Graph

// Edge re-exports the weighted undirected edge type.
type Edge = graph.Edge

// Result re-exports the spanner construction result. When a build is
// cancelled or faulted, the Result returned alongside the typed error has
// Partial set and holds the exact decided prefix of the complete build's
// edge sequence — never a corrupt or half-applied state.
type Result = core.Result

// Budget re-exports the engines' resource budget: a byte cap on the
// estimated working set, a batch-width cap, and a deadline. Budgeted runs
// degrade gracefully down an output-invariant ladder (materialized →
// streamed supply, shrink batch width, drop the hub oracle, drop cached
// bound rows), recording each step in the stats' Degradations log.
type Budget = core.Budget

// Typed failure sentinels, matched with errors.Is. Every engine error
// wraps exactly one of these (or ErrInvalidInput for rejected arguments).
var (
	// ErrInvalidInput is wrapped by every input-validation rejection:
	// non-finite or non-positive edge weights, out-of-range or equal
	// endpoints, NaN/Inf coordinates, malformed distance matrices, and
	// out-of-range stretch values.
	ErrInvalidInput = graph.ErrInvalidInput
	// ErrCancelled is wrapped when a build is stopped by its context or
	// budget deadline; the accompanying Result is the clean decided
	// prefix, marked Partial.
	ErrCancelled = core.ErrCancelled
	// ErrEnginePanic is wrapped when a panic inside a certification
	// worker or serial engine section was captured and converted into an
	// error instead of crashing the process.
	ErrEnginePanic = core.ErrEnginePanic
	// ErrCorruptState is wrapped when a guarded bound row fails its
	// checksum (see MetricParallelOptions.GuardRows) and when a snapshot
	// or write-ahead-log record fails its digest or structural checks
	// during Load or OpenDurable recovery.
	ErrCorruptState = core.ErrCorruptState
	// ErrUnsupportedVersion is wrapped when a snapshot declares a format
	// version this build does not know; the file is well-formed, just
	// newer — nothing is truncated or repaired.
	ErrUnsupportedVersion = persist.ErrUnsupportedVersion
	// ErrNoState is wrapped when OpenDurable finds no usable snapshot in
	// the directory; with a build function supplied the durable spanner
	// is created fresh instead of surfacing it.
	ErrNoState = persist.ErrNoState
	// ErrLocked is wrapped when OpenDurable finds the state directory
	// held by another live process; two writers interleaving WAL appends
	// would corrupt recovery, so the second opener fails fast. A lock
	// left by a crashed holder is detected as stale and broken.
	ErrLocked = persist.ErrLocked
)

// CandidateSource re-exports the streaming candidate-supply interface: a
// source of spanner candidates in greedy scan order, pulled batch by
// batch so memory scales with the active weight bucket instead of the
// full candidate set.
type CandidateSource = core.CandidateSource

// ParallelOptions re-exports the graph engine's tuning knobs (workers,
// batch width, candidate supply, stats) and its robustness controls: Ctx
// cancels the build at the next check point (typed ErrCancelled, prefix
// Result), Budget bounds its resources with graceful degradation, and
// Inject is the fault-injection surface the chaos harness drives.
type ParallelOptions = core.ParallelOptions

// ParallelStats re-exports the graph engine's counters.
type ParallelStats = core.ParallelStats

// MetricParallelOptions re-exports the metric engine's tuning knobs
// (workers, batch width, candidate supply, bucket cap, stats) plus the
// robustness controls (Ctx, Budget, Inject) and GuardRows, which arms
// per-row checksums over the cached bound rows so a corrupted entry
// surfaces as ErrCorruptState instead of silently certifying a wrong
// skip.
type MetricParallelOptions = core.MetricParallelOptions

// MetricParallelStats re-exports the metric engine's counters, including
// the sparse bound-row and streamed-supply memory figures and the
// hub-label fast path's hit counters.
type MetricParallelStats = core.MetricParallelStats

// IncrementalPolicy re-exports the maintained spanner's batching policy:
// the zero value replays every insertion immediately, CoalesceUntilQuery
// defers replays until Result/Flush, and MinBatch defers them until a
// minimum number of elements is pending. Install with
// Incremental.SetPolicy.
type IncrementalPolicy = core.IncrementalPolicy

// FaultTolerantOptions re-exports the fault-tolerant engine's knobs (hub
// count, probe counters) and robustness controls (Ctx, Budget, Inject).
type FaultTolerantOptions = core.FaultTolerantOptions

// FaultTolerantStats re-exports the fault-tolerant engine's probe
// counters.
type FaultTolerantStats = core.FaultTolerantStats

// Metric re-exports the finite metric-space interface.
type Metric = metric.Metric

// ApproxOptions re-exports the approximate-greedy configuration.
type ApproxOptions = approx.Options

// ApproxResult re-exports the approximate-greedy output.
type ApproxResult = approx.Result

// StretchReport re-exports the stretch audit report.
type StretchReport = verify.StretchReport

// NewGraph returns an empty weighted graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewEuclidean builds a Euclidean metric over the given points (same
// dimension everywhere).
func NewEuclidean(pts [][]float64) (Metric, error) { return metric.NewEuclidean(pts) }

// NewMetricFromMatrix wraps an explicit symmetric distance matrix.
func NewMetricFromMatrix(d [][]float64) (Metric, error) { return metric.NewMatrix(d) }

// MetricFromGraph returns the shortest-path metric induced by a connected
// weighted graph (the M_G of the paper's Section 2).
func MetricFromGraph(g *Graph) (Metric, error) { return metric.FromGraph(g) }

// Greedy computes the greedy t-spanner of a weighted graph (Algorithm 1 of
// the paper): edges are examined in non-decreasing weight order, and (u, v)
// is kept iff the current spanner distance exceeds t*w(u, v).
func Greedy(g *Graph, t float64) (*Result, error) { return core.GreedyGraph(g, t) }

// GreedyParallel computes the same spanner as Greedy — identical edge
// sequence, weight, and counters — using the batched-parallel engine:
// skip-certification queries fan out over `workers` goroutines (0 selects
// GOMAXPROCS) against a frozen snapshot of the growing spanner, and only
// the uncertified edges are re-examined serially in exact greedy order.
// Distance queries use bounded bidirectional Dijkstra, which explores two
// balls of radius ~t*w/2 instead of the one-sided ball of radius t*w, so
// even workers=1 is markedly faster than Greedy on non-trivial inputs.
func GreedyParallel(g *Graph, t float64, workers int) (*Result, error) {
	return core.GreedyGraphParallel(g, t, workers)
}

// GreedyParallelOpts is GreedyParallel with explicit batching and
// candidate-supply controls. By default the engine streams candidates from
// a weight-bucketed supply (NewGraphEdgeSource) instead of sorting a full
// copy of the edge list; set Materialize to force the classic sorted-copy
// supply, or Source to plug in a custom one. Output is bit-identical to
// Greedy for any supply that emits the edges in greedy scan order.
func GreedyParallelOpts(g *Graph, t float64, opts ParallelOptions) (*Result, error) {
	return core.GreedyGraphParallelOpts(g, t, opts)
}

// GreedyMetric computes the greedy t-spanner of a finite metric space by
// examining all pairwise distances ("path-greedy"). It is routed through
// the batched cached-bound metric engine (GreedyMetricParallel with
// GOMAXPROCS workers); the output is the same deterministic spanner the
// sequential scan produces.
func GreedyMetric(m Metric, t float64) (*Result, error) { return core.GreedyMetric(m, t) }

// GreedyMetricFast is GreedyMetric with cached distance bounds in the
// spirit of Bose et al. [BCF+10]: a matrix of upper bounds on spanner
// distances certifies most skips without any search, and a row is
// recomputed only when its cached bound fails. It too is routed through
// the batched-parallel metric engine and returns the identical spanner
// with near-quadratic practical running time.
func GreedyMetricFast(m Metric, t float64) (*Result, error) { return core.GreedyMetricFast(m, t) }

// GreedyMetricParallel computes the same spanner as GreedyMetric and
// GreedyMetricFast — identical edge sequence, weight, and counters — with
// explicit control over the worker count (0 selects GOMAXPROCS). The
// engine pulls the pairs in scan order from the streamed weight-bucketed
// supply and examines them in adaptive batches: cached bounds certify
// most skips outright, the remaining sparse bound rows are refreshed
// concurrently against a frozen snapshot of the growing spanner (valid
// because cached upper bounds only tighten as edges are added), and only
// the uncertified pairs are re-examined serially in exact greedy order.
func GreedyMetricParallel(m Metric, t float64, workers int) (*Result, error) {
	return core.GreedyMetricFastParallel(m, t, workers)
}

// GreedyMetricParallelOpts is GreedyMetricParallel with explicit batching
// and candidate-supply controls. By default the engine streams the
// n(n-1)/2 candidate pairs from a weight-bucketed supply (grid-bucketed on
// Euclidean metrics, so a bucket is produced without touching farther
// pairs at all) and keeps distance bounds in sparse rows allocated on
// first refresh — memory scales with the spanner's working set, not with
// n^2. Set Materialize to force the classic materialize-then-sort supply,
// BucketPairs to cap the streamed supply's resident bucket, or Source to
// plug in a custom supply. Output is bit-identical in every mode.
func GreedyMetricParallelOpts(m Metric, t float64, opts MetricParallelOptions) (*Result, error) {
	return core.GreedyMetricFastParallelOpts(m, t, opts)
}

// NewMetricCandidateSource returns the streamed weight-bucketed candidate
// supply over all interpoint pairs of m in greedy scan order; bucketPairs
// <= 0 selects the default cap. Useful for driving GreedyMetricParallelOpts
// with a shared or instrumented supply.
func NewMetricCandidateSource(m Metric, bucketPairs int) CandidateSource {
	return core.NewMetricSource(m, bucketPairs)
}

// NewGraphCandidateSource returns the streamed weight-bucketed supply over
// g's edge list in greedy scan order; bucketPairs <= 0 selects the default
// cap.
func NewGraphCandidateSource(g *Graph, bucketPairs int) CandidateSource {
	return core.NewGraphEdgeSource(g, bucketPairs)
}

// Incremental re-exports the fully dynamic maintained greedy spanner:
// after the initial build it accepts point insertions and deletions
// (metric mode, Insert and Delete) or edge insertions and deletions
// (graph mode, InsertEdges and DeleteEdges), and after every batch its
// Result is bit-identical to a from-scratch greedy build on the
// surviving input. An insertion resumes the greedy scan at the first
// position a new candidate pair occupies: the accepted prefix below it
// is preserved verbatim, whole candidate buckets below it are skipped by
// count alone, and cached bound rows untouched since that prefix keep
// certifying skips — sound because bounds proven on a preserved prefix
// only overestimate the replay's spanner distances. A deletion cuts at
// the earliest accepted edge touching a removed element — every decision
// before it depended only on surviving accepted edges — and rebases the
// cached bound rows and hub arrays backward onto digest-verified
// periodic checkpoints instead of recomputing them, so the tail replay
// starts from restored state. Deleted points become internal tombstones
// (never renumbered, which would reorder weight ties); Result densely
// renumbers the survivors in a tie-preserving order.
type Incremental = core.IncrementalSpanner

// NewIncremental builds the greedy t-spanner of m and returns it as a
// maintained spanner ready for point insertions: call Insert with a
// metric that extends m (same leading points and distances, new points
// appended) and Result for the current spanner. workers selects the
// replay engine's concurrency (0 = GOMAXPROCS).
func NewIncremental(m Metric, t float64, workers int) (*Incremental, error) {
	return core.NewIncrementalMetric(m, t, core.MetricParallelOptions{Workers: workers})
}

// NewIncrementalOpts is NewIncremental with explicit engine controls
// (batch width, bucket cap, stats). Source and Materialize are rejected:
// a maintained spanner owns its candidate supply.
func NewIncrementalOpts(m Metric, t float64, opts MetricParallelOptions) (*Incremental, error) {
	return core.NewIncrementalMetric(m, t, opts)
}

// NewIncrementalGraph builds the greedy t-spanner of g (cloned; later
// mutations of g are not observed) and returns it as a maintained spanner
// ready for edge insertions via InsertEdges.
func NewIncrementalGraph(g *Graph, t float64, workers int) (*Incremental, error) {
	return core.NewIncrementalGraph(g, t, core.ParallelOptions{Workers: workers})
}

// NewIncrementalGraphOpts is NewIncrementalGraph with explicit engine
// controls; Source and Materialize are rejected.
func NewIncrementalGraphOpts(g *Graph, t float64, opts ParallelOptions) (*Incremental, error) {
	return core.NewIncrementalGraph(g, t, opts)
}

// Save writes the complete state of a maintained spanner to path as a
// versioned binary snapshot: the accepted edge list, the tombstone id
// space, the pair-count histogram, the cached bound rows with their
// proof epochs, the hub arrays, and the batching policy — everything a
// Load needs to resume dynamic operation without re-running the greedy
// scan. The write is atomic (temp file + fsync + rename + directory
// fsync) and every section carries its own digest, so a torn or
// corrupted file fails Load with ErrCorruptState instead of producing a
// wrong spanner. The spanner's pending batch is flushed first.
func Save(s *Incremental, path string) error {
	st, err := s.ExportState()
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, persist.EncodeSnapshot(st, 0), 0o644)
}

// Load reads a snapshot written by Save and reconstructs the maintained
// spanner: same result, same counters, same cached certification state,
// ready for further insertions and deletions. workers selects the replay
// engine's concurrency (0 = GOMAXPROCS). A snapshot from a newer format
// version fails with ErrUnsupportedVersion; any digest or structural
// failure with ErrCorruptState.
func Load(path string, workers int) (*Incremental, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, _, err := persist.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	return core.ImportIncremental(st,
		core.MetricParallelOptions{Workers: workers},
		core.ParallelOptions{Workers: workers})
}

// Durable re-exports the crash-safe maintained spanner: an Incremental
// wrapped in a persistence directory holding a versioned snapshot plus a
// write-ahead log of dynamic operations. Every mutation (Insert, Delete,
// InsertEdges, DeleteEdges, SetPolicy, Flush) is validated, appended to
// the log, and fsynced before it is applied, so after a crash at any
// instant OpenDurable recovers a state bit-identical to the uninterrupted
// run: the newest decodable snapshot is imported and the log tail is
// replayed through the same application path the live operations used.
// Checkpoint rotates in a fresh snapshot and truncates the log.
type Durable = persist.Durable

// DurableOptions re-exports the durable spanner's configuration: engine
// options for the metric and graph replay paths, NoSync to trade crash
// safety for speed in tests, and the crash-injection hooks the chaos
// suite drives.
type DurableOptions = persist.Options

// OpenDurable opens the durable spanner persisted in dir, recovering
// from whatever state a crash left behind: the newest valid snapshot is
// loaded and the write-ahead-log tail replayed, with any torn trailing
// record truncated at the exact corruption point. If the directory holds
// no usable state (fresh directory, or a crash before the first snapshot
// completed) and build is non-nil, the spanner is built from scratch via
// build and persisted; with build nil the ErrNoState is surfaced.
// workers selects the replay engine's concurrency (0 = GOMAXPROCS).
// The directory is held under an exclusive lock until Close; a second
// OpenDurable on a dir a live process already holds returns ErrLocked.
func OpenDurable(dir string, workers int, build func() (*Incremental, error)) (*Durable, error) {
	o := persist.Options{
		Metric: core.MetricParallelOptions{Workers: workers},
		Graph:  core.ParallelOptions{Workers: workers},
	}
	d, err := persist.Open(dir, o)
	if err == nil {
		return d, nil
	}
	if !errors.Is(err, persist.ErrNoState) || build == nil {
		return nil, err
	}
	inc, err := build()
	if err != nil {
		return nil, err
	}
	return persist.Create(dir, inc, o)
}

// ApproxGreedy runs the approximate-greedy (1+eps)-spanner algorithm for
// doubling metrics (Section 5 of the paper; Das–Narasimhan / Gudmundsson et
// al. architecture): a bounded-degree base spanner, a light-edge shortcut,
// and a bucketed greedy simulation over a cluster graph.
func ApproxGreedy(m Metric, opts ApproxOptions) (*ApproxResult, error) { return approx.Greedy(m, opts) }

// VerifySpanner checks that h is a t-spanner of g (over the edges of g,
// which implies the bound for all pairs) and reports the worst stretch.
func VerifySpanner(h, g *Graph, t float64) (StretchReport, error) {
	return verify.Spanner(h, g, t, 1e-9)
}

// VerifyMetricSpanner checks that h spans the metric m with stretch t over
// all point pairs.
func VerifyMetricSpanner(h *Graph, m Metric, t float64) (StretchReport, error) {
	return verify.MetricSpanner(h, m, t, 1e-9)
}

// VerifySelfSpanner checks Lemma 3 on a purported greedy output: every edge
// must be irreplaceable. It returns the violating edges (empty for genuine
// greedy spanners).
func VerifySelfSpanner(h *Graph, t float64) []core.SelfSpannerViolation {
	return core.VerifySelfSpanner(h, t)
}

// Lightness returns weight(h) / weight(MST(g)), the paper's Psi(H).
func Lightness(h, g *Graph) (float64, error) { return verify.Lightness(h, g) }

// MetricLightness returns weight(h) / weight(MST of the metric's complete
// distance graph).
func MetricLightness(h *Graph, m Metric) (float64, error) { return verify.MetricLightness(h, m) }

// BaswanaSen builds the randomized (2k-1)-spanner of Baswana and Sen, one
// of the baseline constructions used in the comparison experiments.
func BaswanaSen(rng *rand.Rand, g *Graph, k int) (*Graph, error) {
	return baswanaSen(rng, g, k)
}

// FaultTolerantGreedy computes an f-vertex-fault-tolerant t-spanner of a
// metric (Czumaj–Zhao style greedy; the [Sol14] direction the paper cites).
// Supported for f in {0, 1, 2}; see internal/core for the cost model.
func FaultTolerantGreedy(m Metric, t float64, f int) (*Result, error) {
	return core.FaultTolerantGreedy(m, t, f)
}

// FaultTolerantGreedyOpts is FaultTolerantGreedy with the hub-label fast
// path enabled: with Hubs > 0, per-fault-set probes that some hub label
// proves survivable skip their masked search. Output is bit-identical for
// every hub count.
func FaultTolerantGreedyOpts(m Metric, t float64, f int, opts FaultTolerantOptions) (*Result, error) {
	return core.FaultTolerantGreedyOpts(m, t, f, opts)
}

// DefaultHubs suggests a hub count for an n-element instance; pass it to
// the Hubs option when you want the certification fast path without
// hand-tuning k.
func DefaultHubs(n int) int { return core.DefaultHubs(n) }

// VerifyFaultTolerance exhaustively audits that h is an f-fault-tolerant
// t-spanner of m (f in {0, 1, 2}).
func VerifyFaultTolerance(h *Graph, m Metric, t float64, f int) error {
	return core.VerifyFaultTolerance(h, m, t, f, 1e-9)
}
