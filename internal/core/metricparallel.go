package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/metric"
)

// MetricParallelOptions configures GreedyMetricFastParallelOpts.
type MetricParallelOptions struct {
	// Workers is the number of goroutines refreshing bound rows
	// concurrently; 0 selects GOMAXPROCS. With Workers == 1 the engine
	// degenerates to the serial cached-bound scan (GreedyMetricFastSerial
	// with reusable search scratch and the sparse row store).
	Workers int
	// BatchSize fixes the number of sorted pairs examined per
	// certification round. 0 (the default) selects adaptive batching: the
	// width grows while batches certify cleanly and shrinks when too many
	// pairs fall through to the serial re-check.
	BatchSize int
	// Source overrides the candidate supply. The default is the streamed
	// weight-bucketed supply of NewMetricSource (grid-bucketed on
	// Euclidean metrics); any CandidateSource emitting all n(n-1)/2 pairs
	// in greedy scan order yields the identical spanner.
	Source CandidateSource
	// Materialize forces the classic materialize-then-sort supply (all
	// pairs built and globally sorted up front, O(n^2) memory before the
	// first greedy decision). It exists for benchmarks and comparison;
	// output is identical either way. Ignored when Source is set.
	Materialize bool
	// BucketPairs caps how many candidates the default streamed supply
	// holds materialized at once; <= 0 selects DefaultBucketPairs (scaled
	// up on very large instances). Ignored when Source is set or
	// Materialize is true.
	BucketPairs int
	// Hubs enables the hub-label certification fast path: k hub vertices
	// are selected by ball-growth sampling and their exact distance
	// arrays over the growing spanner are maintained incrementally
	// (HubOracle). Each certification query is answered first by the
	// O(k) hub upper bound; a hub-certified skip is exact-equivalent, so
	// output stays bit-identical for every k. With hubs on, row
	// refreshes are additionally bounded to a multiple of the query
	// radius (hubRefreshRadiusFactor) — sound because partially covered
	// rows are still upper bounds, and cheap because the hub labels
	// absorb the long-range certifications bounded rows no longer cache.
	// <= 0 disables the oracle and reproduces the pre-hub engine's
	// behavior (and exact Dijkstra schedule) verbatim.
	Hubs int
	// Stats, when non-nil, is filled with engine counters for ablations
	// and benchmarks.
	Stats *MetricParallelStats
	// Ctx, when non-nil, makes the build cancellable: cancellation is
	// checked at batch boundaries, inside the row-refresh fan-out, and
	// before every serial decision, and a cancelled build returns the
	// clean prefix Result (Partial set) with a typed ErrCancelled.
	Ctx context.Context
	// Budget bounds the run's resources; see Budget. Degradation steps
	// land in Stats.Degradations.
	Budget Budget
	// Inject installs fault-injection hooks (see InjectionHooks); nil
	// hooks cost nothing. Exposed for the internal/chaos harness.
	Inject InjectionHooks
	// GuardRows arms per-row checksums on the sparse bound store: every
	// read-modify of a row and every skip certified from a cached bound
	// first verifies the row's checksum, so a corrupted entry (a bit
	// flip, simulated or real) surfaces as a typed ErrCorruptState
	// instead of silently certifying a wrong skip. Off by default; the
	// guarded paths cost O(n) per row operation.
	GuardRows bool
}

// MetricParallelStats reports how the batched metric engine spent its
// effort. CachedSkips + HubSkips + CertifiedSkips + SerialSkips + Kept
// equals the number of pairs examined (n(n-1)/2).
type MetricParallelStats struct {
	// Batches is the number of certification rounds.
	Batches int
	// CachedSkips counts pairs certified by an already-cached bound, with
	// no Dijkstra at all.
	CachedSkips int
	// CertifiedSkips counts pairs certified by a parallel row refresh
	// against the frozen snapshot.
	CertifiedSkips int
	// SerialSkips counts pairs that survived both cache and snapshot
	// certification but were skipped by the exact serial re-check.
	SerialSkips int
	// Kept counts accepted edges.
	Kept int
	// ParallelRefreshes counts bound rows recomputed concurrently against
	// frozen snapshots.
	ParallelRefreshes int
	// SerialRefreshes counts rows recomputed by the ordered re-check
	// against the live spanner.
	SerialRefreshes int
	// RefreshTouched is the total number of vertices all row refreshes
	// reached — the engine's exact-Dijkstra work volume. Full-row
	// refreshes touch ~n vertices each; the bounded refreshes of the
	// hub-label fast path touch only the query ball.
	RefreshTouched int
	// RowsAllocated counts distinct bound rows the sparse store
	// materialized; n minus RowsAllocated rows were never refreshed and
	// cost no memory at all.
	RowsAllocated int
	// PeakBucketPairs is the largest candidate bucket the streamed supply
	// held materialized at once (0 for materialized or custom supplies).
	PeakBucketPairs int
	// SupplyPasses counts the streamed supply's enumeration passes
	// (counting, subdivision, collection; 0 for materialized or custom
	// supplies).
	SupplyPasses int
	// FinalBatchSize is the adaptive batch width at the end of the scan.
	FinalBatchSize int
	// HubQueries / HubSkips count certification queries that reached the
	// hub oracle (past the row cache) and the skips it certified without
	// any Dijkstra. HubRelaxed is the total number of hub-array entries
	// the dirty-radius maintenance re-relaxed — the whole upkeep cost of
	// the oracle, in vertices.
	HubQueries int
	HubSkips   int
	HubRelaxed int
	// HubsReselected is the oracle's lifetime count of hubs re-sampled
	// after their vertex was deleted (see HubOracle.ReplaceHubs). Unlike
	// the per-scan counters above it accumulates across a maintained
	// spanner's whole history, because reselection happens at Delete time,
	// outside any scan; one-shot builds always report 0.
	HubsReselected int
	// Degradations logs, in order, each step the engine took down the
	// resource-budget ladder (supply streamed, batch width floored, hub
	// oracle dropped, cached rows dropped, ...). Empty for unbudgeted or
	// in-budget runs. Every logged step is output-invariant.
	Degradations []string
}

// boundStore is the sparse replacement for the dense n x n float64 bound
// matrix: rows are allocated on first refresh, so vertices whose rows the
// scan never recomputes cost nothing, and entries are 16-bit (bfloat16)
// upper bounds rounded toward +Inf — 4x denser than float64 per touched
// row, 8x-plus for untouched ones. A rounded-up upper bound is still an
// upper bound, and the engine decides every non-certified pair with an
// exact float64 Dijkstra distance, so the lossy cache can only affect
// which pairs reach the exact re-check (a sub-percent wider refresh
// shell), never the decision itself.
//
// Each row additionally carries an epoch: the length of the accepted-edge
// prefix its bounds were proven on (every write stamps the row with the
// spanner size at proof time). The incremental engine uses the epochs to
// decide which rows survive an insertion — a row proven on a prefix the
// union scan preserves verbatim stays a valid set of upper bounds for
// every later partial spanner of the replay, while rows proven on longer
// prefixes are dropped (see rebase).
type boundStore struct {
	rows [][]uint16
	// epochs[u] is the accepted-edge count the latest write to row u was
	// proven against; meaningless while rows[u] is nil.
	epochs []int
	// slack is extra capacity reserved beyond each row's length, so a
	// maintained store can grow rows in place when points are inserted
	// instead of reallocating the whole row set per insertion. Zero for
	// one-shot builds, which never grow.
	slack int
	// guard arms per-row checksums (GuardRows): sums[u] is the FNV-1a
	// digest of row u, recomputed after every legitimate write and
	// verified before any read-modify of the row and before any skip is
	// certified from its cached bounds. A write that bypasses the store
	// (a bit flip) therefore surfaces as ErrCorruptState at the next
	// guarded access instead of silently certifying a wrong skip.
	// Verify-before-fold ordering matters: folding first and recomputing
	// the digest would launder the corruption into a valid checksum.
	guard bool
	sums  []uint64
	// hist, when checkpointing is enabled (enableCheckpoints), holds up to
	// maxRowVersions epoch snapshots per row. A snapshot of row u at epoch
	// e is a copy of the row when its bounds were proven on the first e
	// accepted edges; a backward rebase to keep >= e edges can restore it
	// instead of resetting the row, because bounds proven on a prefix the
	// rebased scan preserves can only overestimate later distances. Each
	// snapshot carries its own digest, verified at restore time — a
	// corrupted snapshot is dropped, never restored, so corruption cannot
	// be laundered through a checkpoint.
	hist [][]rowVersion
	// ckptEvery is the accepted-edge interval between snapshot passes
	// (0 disables checkpointing; one-shot builds never pay for it), and
	// nextCkpt the accepted count that triggers the next pass.
	ckptEvery int
	nextCkpt  int
}

// rowVersion is one epoch snapshot of a bound row: the accepted-edge
// prefix it was proven on, a copy of the row, and the copy's digest.
type rowVersion struct {
	epoch int
	data  []uint16
	sum   uint64
}

// maxRowVersions bounds how many snapshots a row retains; older versions
// are evicted, so checkpoint memory is at most maxRowVersions copies of
// the materialized rows.
const maxRowVersions = 2

// inf16 is +Inf in the bfloat16 encoding (high 16 bits of float32 +Inf).
const inf16 = 0x7F80

func newBoundStore(n int) *boundStore {
	return &boundStore{rows: make([][]uint16, n), epochs: make([]int, n)}
}

// enc16up encodes a non-negative float64 as the bfloat16 (high half of
// float32) upper bound: the encoded value decodes to >= x. For
// non-negative floats the bit pattern is monotone in the value, so uint16
// comparisons order the encoded bounds correctly.
func enc16up(x float64) uint16 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	bits := math.Float32bits(f)
	h := uint16(bits >> 16)
	if bits&0xFFFF != 0 {
		h++ // truncation dropped precision; 0x7F7F+1 lands on +Inf
	}
	return h
}

// dec16 decodes a bfloat16 bound back to float64.
func dec16(h uint16) float64 {
	return float64(math.Float32frombits(uint32(h) << 16))
}

// get returns the best cached upper bound on delta_H(u, v), +Inf when
// neither endpoint's row is materialized. Reading both rows subsumes the
// dense matrix's symmetric mirror writes.
func (b *boundStore) get(u, v int) float64 {
	hu, hv := uint16(inf16), uint16(inf16)
	if ru := b.rows[u]; ru != nil {
		hu = ru[v]
	}
	if rv := b.rows[v]; rv != nil {
		hv = rv[u]
	}
	if hv < hu {
		hu = hv
	}
	return dec16(hu)
}

// row returns u's bound row, materializing it (all +Inf, zero diagonal) on
// first use. Concurrent calls for distinct u are safe: each row slot is
// written by exactly one owner and no shared counter is touched (countRows
// tallies rows after the fact), so this stays data-race-free.
func (b *boundStore) row(u int) []uint16 {
	ru := b.rows[u]
	if ru == nil {
		ru = make([]uint16, len(b.rows), len(b.rows)+b.slack)
		for i := range ru {
			ru[i] = inf16
		}
		ru[u] = 0
		b.rows[u] = ru
		if b.guard {
			// The slot's digest, like the slot, has exactly one owner.
			b.sums[u] = sumRow(ru)
		}
	}
	return ru
}

// countRows counts the materialized rows (called from the serial
// section, after any concurrent refreshes have joined).
func (b *boundStore) countRows() int {
	allocated := 0
	for _, r := range b.rows {
		if r != nil {
			allocated++
		}
	}
	return allocated
}

// setGuard arms the per-row checksums, digesting any rows already
// materialized. Safe only from serial sections.
func (b *boundStore) setGuard() {
	b.guard = true
	b.sums = make([]uint64, len(b.rows))
	for u, ru := range b.rows {
		if ru != nil {
			b.sums[u] = sumRow(ru)
		}
	}
}

// sumRow is the deterministic FNV-1a digest of one bound row.
func sumRow(row []uint16) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range row {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

// verifyRow checks u's checksum in guard mode; a mismatch means the row
// no longer matches what was proven into it.
func (b *boundStore) verifyRow(u int) error {
	if !b.guard || b.rows[u] == nil {
		return nil
	}
	if sumRow(b.rows[u]) != b.sums[u] {
		return fmt.Errorf("%w: bound row %d fails its checksum", ErrCorruptState, u)
	}
	return nil
}

// verifyPair guards a skip about to be certified from cached bounds: both
// endpoint rows (the two sources get consults) must pass their checksums.
func (b *boundStore) verifyPair(u, v int) error {
	if !b.guard {
		return nil
	}
	if err := b.verifyRow(u); err != nil {
		return err
	}
	return b.verifyRow(v)
}

// clear drops every cached row (the budget ladder's last metric-side
// step); the cache is only an accelerator, so dropping it cannot change
// any decision. Checkpoint history goes with the rows — it is the same
// cache memory the ladder is shedding.
func (b *boundStore) clear() {
	for u := range b.rows {
		b.rows[u] = nil
		b.epochs[u] = 0
		if b.guard {
			b.sums[u] = 0
		}
	}
	for u := range b.hist {
		b.hist[u] = nil
	}
}

// enableCheckpoints arms periodic row snapshots every `every` accepted
// edges. Only the incremental engine enables this: one-shot builds never
// rebase backward, so they skip the copies entirely.
func (b *boundStore) enableCheckpoints(every int) {
	if every <= 0 {
		b.ckptEvery = 0
		b.hist = nil
		return
	}
	b.ckptEvery = every
	b.nextCkpt = every
	b.hist = make([][]rowVersion, len(b.rows))
}

// maybeCheckpoint snapshots, at a batch boundary with `accepted` edges
// decided, every materialized row whose proof epoch advanced since its
// newest snapshot. In guard mode a row failing its live checksum is
// skipped — a snapshot must only ever hold proven state. Called from
// serial sections only.
func (b *boundStore) maybeCheckpoint(accepted int) {
	if b.ckptEvery <= 0 || accepted < b.nextCkpt {
		return
	}
	for b.nextCkpt <= accepted {
		b.nextCkpt += b.ckptEvery
	}
	for u, ru := range b.rows {
		if ru == nil {
			continue
		}
		hv := b.hist[u]
		if len(hv) > 0 && hv[len(hv)-1].epoch == b.epochs[u] {
			continue // unchanged since its newest snapshot
		}
		if b.guard && sumRow(ru) != b.sums[u] {
			continue // corrupted since its digest; never snapshot it
		}
		data := append([]uint16(nil), ru...)
		hv = append(hv, rowVersion{epoch: b.epochs[u], data: data, sum: sumRow(data)})
		if len(hv) > maxRowVersions {
			copy(hv, hv[len(hv)-maxRowVersions:])
			hv = hv[:maxRowVersions]
		}
		b.hist[u] = hv
	}
}

// pruneHist drops row u's snapshots proven past the keep prefix: their
// epochs lie on the timeline the backward rebase is discarding, so they
// bound distances of spanners the replay will never rebuild.
func (b *boundStore) pruneHist(u, keep int) {
	if b.hist == nil || len(b.hist[u]) == 0 {
		return
	}
	hv := b.hist[u][:0]
	for _, v := range b.hist[u] {
		if v.epoch <= keep {
			hv = append(hv, v)
		}
	}
	b.hist[u] = hv
}

// restoreRow rebuilds row u from its newest surviving snapshot with epoch
// <= keep, sized to n points, and reports whether it did. Every candidate
// snapshot's digest is verified first — always, not only in guard mode —
// and a mismatching version is discarded on the spot, so a corrupted
// checkpoint degrades to "no checkpoint" instead of restoring poison.
func (b *boundStore) restoreRow(u, keep, n int) bool {
	if b.hist == nil {
		return false
	}
	hv := b.hist[u]
	for len(hv) > 0 {
		v := hv[len(hv)-1]
		if v.epoch > keep {
			hv = hv[:len(hv)-1]
			continue
		}
		if sumRow(v.data) != v.sum {
			// Corrupted snapshot: drop it, try the older one.
			hv = hv[:len(hv)-1]
			continue
		}
		ru := b.rows[u]
		if cap(ru) < n {
			ru = make([]uint16, n, n+b.slack)
		} else {
			ru = ru[:n]
		}
		copy(ru, v.data)
		for i := len(v.data); i < n; i++ {
			ru[i] = inf16
		}
		ru[u] = 0
		b.rows[u] = ru
		b.epochs[u] = v.epoch
		b.hist[u] = hv
		return true
	}
	b.hist[u] = hv
	return false
}

// foldRow folds an exact distance row into u's cached bound row,
// tightening entries that improved. epoch is the accepted-edge count of
// the spanner the distances were computed on; the row keeps the largest
// epoch folded into it (entries proven on shorter prefixes are looser,
// hence still valid upper bounds at the larger epoch). In guard mode the
// row is verified before the fold — never after, which would launder a
// corrupted entry into a freshly valid checksum — and re-digested after.
func (b *boundStore) foldRow(u int, dist []float64, epoch int) error {
	ru := b.row(u)
	if err := b.verifyRow(u); err != nil {
		return err
	}
	for v, d := range dist {
		if f := enc16up(d); f < ru[v] {
			ru[v] = f
		}
	}
	if epoch > b.epochs[u] {
		b.epochs[u] = epoch
	}
	if b.guard {
		b.sums[u] = sumRow(ru)
	}
	return nil
}

// set records an accepted edge's weight as a bound on its endpoints.
// epoch is the accepted-edge count including the edge itself. Guard mode
// verifies before the write, exactly as foldRow does.
func (b *boundStore) set(u, v int, w float64, epoch int) error {
	ru := b.row(u)
	if err := b.verifyRow(u); err != nil {
		return err
	}
	if f := enc16up(w); f < ru[v] {
		ru[v] = f
	}
	if epoch > b.epochs[u] {
		b.epochs[u] = epoch
	}
	if b.guard {
		b.sums[u] = sumRow(ru)
	}
	return nil
}

// rebase prepares the store for an incremental replay that restarts from
// the first keep accepted edges of the previous scan, over a vertex set
// grown to n points: rows whose bounds were proven on a longer prefix are
// invalidated (their entries may undercut distances in the replay's
// smaller starting spanner), surviving rows are padded with +Inf entries
// for the new points, and the store grows to n row slots. Rows untouched
// since the preserved prefix survive with their cache intact — the
// insertion soundness invariant: a bound proven on a subgraph of every
// partial spanner of the replay can only overestimate, never undercut.
//
// Backing arrays are recycled: an invalidated row is reset to all-+Inf in
// place, and rows grow within their reserved slack, so repeated
// insertions churn no row memory until the slack is exhausted.
func (b *boundStore) rebase(keep, n int) {
	b.slack = boundRowSlack(n)
	for u := range b.rows {
		b.pruneHist(u, keep)
		ru := b.rows[u]
		if ru == nil {
			continue
		}
		if b.guard && sumRow(ru) != b.sums[u] {
			// The row was corrupted since its last digest and never
			// consulted. Migrating it would launder the corruption into a
			// fresh checksum; dropping it is sound — a dropped row is
			// merely unproven and is rebuilt on demand. A digest-verified
			// checkpoint at or below the keep prefix may still stand in.
			b.rows[u] = nil
			b.epochs[u] = 0
			b.restoreRow(u, keep, n)
			continue
		}
		stale := b.epochs[u] > keep
		if stale && b.restoreRow(u, keep, n) {
			// Backward rebase: the row was proven past the keep prefix, but
			// a checkpoint at or below it survives — restore that instead
			// of resetting, so the replay starts with warm proven bounds.
			continue
		}
		old := len(ru)
		switch {
		case cap(ru) >= n:
			// Grow in place within the reserved slack.
			ru = ru[:n]
			b.rows[u] = ru
		case stale:
			// Stale and too small: nothing worth keeping.
			b.rows[u] = nil
			b.epochs[u] = 0
			continue
		default:
			grown := make([]uint16, n, n+b.slack)
			copy(grown, ru)
			ru, b.rows[u] = grown, grown
		}
		if stale {
			// Reset the recycled array to "unknown"; the row is now as
			// good as freshly materialized.
			old = 0
			b.epochs[u] = 0
		}
		for v := old; v < n; v++ {
			ru[v] = inf16
		}
		ru[u] = 0
	}
	for len(b.rows) < n {
		b.rows = append(b.rows, nil)
		b.epochs = append(b.epochs, 0)
	}
	if b.hist != nil {
		for len(b.hist) < n {
			b.hist = append(b.hist, nil)
		}
	}
	if b.guard {
		b.sums = make([]uint64, n)
		for u, ru := range b.rows {
			if ru != nil {
				b.sums[u] = sumRow(ru)
			}
		}
	}
}

// rowCorrupter is the Corrupter handle the metric engines hand to the
// OnBatch injection hook: FlipRowBit flips one bit of a materialized
// bound-row entry without updating the row's checksum — the simulated
// memory fault the guard checksums exist to catch.
type rowCorrupter struct{ b *boundStore }

func (c rowCorrupter) FlipRowBit(u, v int, bit uint) bool {
	if u < 0 || u >= len(c.b.rows) || c.b.rows[u] == nil || v < 0 || v >= len(c.b.rows[u]) {
		return false
	}
	c.b.rows[u][v] ^= 1 << (bit % 16)
	return true
}

// FlipCheckpointBit flips one bit in the newest checkpoint snapshot of
// row u (scanning forward with wraparound to the first row that has one)
// without touching the snapshot's stored digest — the simulated fault
// that must surface at restore time as a dropped snapshot, never as
// restored poison. Reports false when no snapshot exists to corrupt.
func (c rowCorrupter) FlipCheckpointBit(u, v int, bit uint) bool {
	b := c.b
	n := len(b.hist)
	if n == 0 {
		return false
	}
	u = ((u % n) + n) % n
	for i := 0; i < n; i++ {
		hv := b.hist[(u+i)%n]
		if len(hv) == 0 {
			continue
		}
		data := hv[len(hv)-1].data
		if len(data) == 0 {
			continue
		}
		col := ((v % len(data)) + len(data)) % len(data)
		data[col] ^= 1 << (bit % 16)
		return true
	}
	return false
}

// boundRowSlack is the growth headroom a maintained store reserves per
// row: enough that a stream of small insertions grows rows in place.
func boundRowSlack(n int) int {
	s := n / 8
	if s < 64 {
		s = 64
	}
	return s
}

// GreedyMetricFastParallel computes the greedy t-spanner of a finite metric
// space like GreedyMetricFastSerial — cached distance bounds in the spirit
// of Bose et al. [BCF+10] — but refreshes the cached bound rows
// concurrently over `workers` goroutines (0 selects GOMAXPROCS) and pulls
// candidates from the streamed weight-bucketed supply instead of a
// materialized, globally sorted pair list. The output — edge sequence,
// weight, and EdgesExamined — is deterministic (independent of workers,
// batching, bucketing, and scheduling) and bit-identical to
// GreedyMetricFastSerial's, because both engines realize the exact greedy
// decision for every pair.
//
// The engine scans the supplied pairs in batches. A serial pre-pass
// certifies every pair the cached bounds already cover. The remaining
// pairs' source rows are then refreshed concurrently with full Dijkstra
// runs against the *frozen* spanner snapshot H0 taken at the batch
// boundary; a bound proven on H0 stays a valid upper bound for every later
// spanner H ⊇ H0 because adding edges only shrinks distances, so a skip it
// certifies is final. Each row belongs to exactly one worker and workers
// write nothing else, so the only synchronization is the join. Pairs the
// snapshot cannot certify are re-decided serially, in exact greedy order,
// on exact float64 distances against the live spanner — exactly the serial
// algorithm's decision procedure.
func GreedyMetricFastParallel(m metric.Metric, t float64, workers int) (*Result, error) {
	return GreedyMetricFastParallelOpts(m, t, MetricParallelOptions{Workers: workers})
}

// GreedyMetricFastParallelOpts is GreedyMetricFastParallel with explicit
// batching and supply controls; see MetricParallelOptions.
func GreedyMetricFastParallelOpts(m metric.Metric, t float64, opts MetricParallelOptions) (*Result, error) {
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	stats := opts.Stats
	if stats == nil {
		stats = &MetricParallelStats{}
	}
	*stats = MetricParallelStats{}

	n := m.N()
	res := &Result{N: n, Stretch: t}
	if n <= 1 {
		return res, nil
	}
	env := newScanEnv(opts.Ctx, opts.Budget, opts.Inject, func(step string) {
		stats.Degradations = append(stats.Degradations, step)
	})
	src := opts.Source
	if src == nil {
		materialize, bucketPairs := opts.Materialize, opts.BucketPairs
		if env != nil {
			resolveSupplyBudget(opts.Budget, env.record, &materialize, &bucketPairs, n*(n-1)/2)
		}
		if materialize {
			src = NewMaterializedSource(sortedPairs(m))
		} else {
			src = NewMetricSource(m, bucketPairs)
		}
	}
	h := graph.New(n)
	sc := &metricScan{
		t:       t,
		workers: opts.Workers,
		h:       h,
		bound:   newBoundStore(n),
		res:     res,
		stats:   stats,
		env:     env,
	}
	if opts.GuardRows {
		sc.bound.setGuard()
	}
	hubs := opts.Hubs
	if env != nil {
		resolveHubBudget(opts.Budget, env.record, &hubs, n)
	}
	if hubs > 0 {
		sc.oracle = NewHubOracle(SelectMetricHubs(m, hubs), h, 0)
	}
	return res, sc.run(src, opts.BatchSize)
}

// metricScan bundles the state of one batched cached-bound greedy scan:
// the partial spanner, the sparse bound store, and the result being
// accumulated. A fresh build starts it empty; the incremental engine
// starts it at the preserved prefix of a previous scan (with the bound
// store rebased) and drains only the tail of the candidate stream.
type metricScan struct {
	t       float64
	workers int // <= 0 selects GOMAXPROCS
	h       *graph.Graph
	bound   *boundStore
	// oracle, when non-nil, is the hub-label certification fast path; it
	// is consulted only from the scan's serial sections, bounds the row
	// refreshes to hubRefreshRadiusFactor times the query radius, and
	// pre-seeds the bound rows it certifies through.
	oracle *HubOracle
	res    *Result
	stats  *MetricParallelStats
	// env, when non-nil, carries the run's cancellation, budget, and
	// fault-injection state; nil reproduces the pre-robustness engine.
	env *scanEnv
}

// hubRefreshRadiusFactor scales the bounded row refreshes of a hub-enabled
// metric scan: a pair decision only needs distances within t*w, and a
// radius a factor above that keeps the row useful for the following pairs
// of similar scale while staying far cheaper than a full-graph Dijkstra.
// Partially covered rows are sound (uncovered entries stay +Inf, a valid
// upper bound); the hub labels absorb the long-range certifications the
// bounded rows no longer cache.
const hubRefreshRadiusFactor = 2

// run drains src through the batched-certification scan, appending every
// accept to the scan's result; batchSize <= 0 selects adaptive batching.
// On clean completion the returned error is nil, the stats are final, and
// any candidates a cut-resumed source suppressed are folded into
// EdgesExamined, so a resumed scan accounts for exactly the candidates a
// full scan examines. On cancellation, deadline, captured panic, injected
// fault, or a guarded checksum failure the scan stops committing
// immediately: the result holds the exact decided prefix of the reference
// edge sequence (Partial set) and a typed error is returned. Every worker
// is joined before any batch outcome is inspected, so no goroutine
// outlives run on any path, and no decision derived from a
// possibly-truncated search or an unverified cached bound is committed.
func (sc *metricScan) run(src CandidateSource, batchSize int) (err error) {
	t, h, bound, res, stats, env := sc.t, sc.h, sc.bound, sc.res, sc.stats, sc.env
	oracle := sc.oracle
	defer func() {
		if p := recover(); p != nil {
			err = panicErr(p)
		}
		if err != nil {
			res.Partial = true
		}
	}()
	workers := sc.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := h.N()
	serial := graph.NewSearcher(n)
	stop := env.stopFn()
	serial.SetStop(stop)
	row := make([]float64, n)
	relaxed0 := 0
	if oracle != nil {
		relaxed0 = oracle.Relaxed()
	}
	var corrupter Corrupter = rowCorrupter{b: bound}

	// refreshExact recomputes row u against the live spanner, folds it
	// into the bound store, and returns the exact distance to v — the
	// value the serial reference's decision uses. With hubs the search is
	// bounded: every settled distance is exact, unreached entries stay
	// +Inf, and the decision only needs to know the distance up to limit,
	// so the returned value decides the pair exactly either way.
	refreshExact := func(u, v int, limit float64) (float64, error) {
		if oracle != nil {
			serial.BoundedDistances(h, u, hubRefreshRadiusFactor*limit, row)
		} else {
			serial.Distances(h, u, row)
		}
		if ferr := bound.foldRow(u, row, len(res.Edges)); ferr != nil {
			return 0, ferr
		}
		stats.SerialRefreshes++
		stats.RefreshTouched += serial.LastTouched()
		return row[v], nil
	}
	// hubCertify answers one certification query from the hub labels and
	// pre-seeds the pair's bound row with the certified bound (stamped
	// with the epoch it was proven at), so the cache layer and the oracle
	// compound: the next pair out of u at this scale certifies from the
	// row without even the O(k) hub scan.
	hubCertify := func(u, v int, limit float64) (bool, error) {
		stats.HubQueries++
		b, ok := oracle.Certify(u, v, limit)
		if !ok {
			return false, nil
		}
		stats.HubSkips++
		return true, bound.set(u, v, b, oracle.Epoch())
	}
	accept := func(e graph.Edge) error {
		h.MustAddEdge(e.U, e.V, e.W)
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
		if serr := bound.set(e.U, e.V, e.W, len(res.Edges)); serr != nil {
			return serr
		}
		if oracle != nil {
			oracle.OnAccept(e)
		}
		stats.Kept++
		return nil
	}
	finish := func() {
		stats.RowsAllocated = bound.countRows()
		if bs, ok := src.(*bucketedSource); ok {
			stats.PeakBucketPairs = bs.PeakBucket()
			stats.SupplyPasses = bs.Passes()
			res.EdgesExamined += bs.Skipped()
		}
		if oracle != nil {
			stats.HubRelaxed = oracle.Relaxed() - relaxed0
			stats.HubsReselected = oracle.Reselected()
		}
	}
	// checkBudget walks the in-scan degradation ladder at batch
	// boundaries under a byte budget: floor the batch width (sticky, via
	// the env's width cap), then drop the hub oracle, then drop the
	// cached bound rows, then record exhaustion once. Every step is
	// output-invariant — the cache and the oracle only accelerate
	// decisions the exact searches re-derive.
	rowsDropped := false
	checkBudget := func(batch int) int {
		if env == nil || env.budget.MaxBytes <= 0 {
			return batch
		}
		est := searcherPoolBytes(workers, n) + int64(batch)*edgeBytes +
			int64(bound.countRows())*int64(n)*boundRowBytesPerVertex
		if bs, ok := src.(*bucketedSource); ok {
			est += int64(bs.PeakBucket()) * edgeBytes
		}
		if oracle != nil {
			est += hubBytes(len(oracle.Hubs()), n)
		}
		switch {
		case est <= env.budget.MaxBytes:
		case batch > minBatch:
			batch = minBatch
			env.budget.MaxBatchWidth = minBatch
			env.record(fmt.Sprintf("batch width floored to %d under byte budget", minBatch))
		case oracle != nil:
			env.record(fmt.Sprintf("hub oracle (%d hubs) dropped under byte budget", len(oracle.Hubs())))
			oracle = nil
		case !rowsDropped:
			rowsDropped = true
			env.record(fmt.Sprintf("cached bound rows (%d) dropped under byte budget", bound.countRows()))
			bound.clear()
		case !env.exhausted:
			env.exhausted = true
			env.record("byte budget exhausted; no degradation steps remain")
		}
		return batch
	}

	if workers == 1 {
		// Serial fast path: the cached-bound scan with reusable scratch,
		// no snapshot pass; the supply is still streamed. Cancellation is
		// checked at batch boundaries and after each exact search, before
		// the decision it feeds is committed.
		chunk := env.clampBatch(batchSize)
		if chunk <= 0 {
			chunk = env.clampBatch(maxBatch)
		}
		for batchNo := 0; ; batchNo++ {
			if cerr := env.cancelled(); cerr != nil {
				return cerr
			}
			env.onBatch(batchNo, corrupter)
			pairs := src.NextBatch(chunk)
			if len(pairs) == 0 {
				break
			}
			for _, e := range pairs {
				limit := t * e.W
				env.onCertify(e)
				if bound.get(e.U, e.V) <= limit {
					if verr := bound.verifyPair(e.U, e.V); verr != nil {
						return verr
					}
					stats.CachedSkips++
					res.EdgesExamined++
					continue
				}
				if oracle != nil {
					ok, herr := hubCertify(e.U, e.V, limit)
					if herr != nil {
						return herr
					}
					if ok {
						res.EdgesExamined++
						continue
					}
				}
				d, rerr := refreshExact(e.U, e.V, limit)
				if rerr != nil {
					return rerr
				}
				if env.active() {
					if cerr := env.cancelled(); cerr != nil {
						return cerr
					}
				}
				if d <= limit {
					stats.SerialSkips++
					res.EdgesExamined++
					continue
				}
				if aerr := accept(e); aerr != nil {
					return aerr
				}
				res.EdgesExamined++
			}
			bound.maybeCheckpoint(len(res.Edges))
		}
		stats.FinalBatchSize = serialBatchStat(batchSize, res.EdgesExamined)
		finish()
		return nil
	}

	pool := make([]*graph.Searcher, workers)
	rows := make([][]float64, workers)
	touchedBy := make([]int, workers)
	for i := range pool {
		pool[i] = graph.NewSearcher(n)
		pool[i].SetStop(stop)
		rows[i] = make([]float64, n)
	}
	// errs holds one slot per worker: a captured panic, a cancellation
	// bail-out, or a guarded checksum failure. Slots are written by their
	// owning worker only and read after the join.
	errs := make([]error, workers)
	var (
		cached []bool
		// exact[i] is pair i's exact snapshot distance, filled in phase 1
		// for every pair the cache pre-pass could not certify.
		exact []float64
		// sources collects the distinct row indices the current batch
		// needs refreshed; srcPairs[k] lists the batch positions whose
		// source is sources[k]; inBatch/srcAt stamp membership per round.
		sources  []int
		srcPairs [][]int32
		// srcLimit[k] is the largest query limit among sources[k]'s batch
		// pairs; with hubs the row refresh is bounded to a factor of it.
		srcLimit []float64
	)
	inBatch := make([]int, n)
	for i := range inBatch {
		inBatch[i] = -1
	}
	srcAt := make([]int, n)

	batch := env.clampBatch(batchSize)
	adaptive := batchSize <= 0
	if adaptive {
		batch = env.clampBatch(initialBatch(workers))
	}

	for {
		if cerr := env.cancelled(); cerr != nil {
			return cerr
		}
		env.onBatch(stats.Batches, corrupter)
		pairs := src.NextBatch(batch)
		if len(pairs) == 0 {
			break
		}
		round := stats.Batches
		stats.Batches++
		if len(pairs) > len(cached) {
			cached = make([]bool, len(pairs))
			exact = make([]float64, len(pairs))
		}

		// Serial pre-pass: certify what the cache (and then the hub
		// labels) already cover and collect the rows the rest of the
		// batch wants refreshed.
		sources = sources[:0]
		for i, e := range pairs {
			limit := t * e.W
			if cached[i] = bound.get(e.U, e.V) <= limit; cached[i] {
				if verr := bound.verifyPair(e.U, e.V); verr != nil {
					return verr
				}
				stats.CachedSkips++
				continue
			}
			if oracle != nil {
				ok, herr := hubCertify(e.U, e.V, limit)
				if herr != nil {
					return herr
				}
				if ok {
					cached[i] = true
					continue
				}
			}
			if inBatch[e.U] != round {
				inBatch[e.U] = round
				srcAt[e.U] = len(sources)
				sources = append(sources, e.U)
				if len(srcPairs) < len(sources) {
					srcPairs = append(srcPairs, nil)
					srcLimit = append(srcLimit, 0)
				}
				srcPairs[len(sources)-1] = srcPairs[len(sources)-1][:0]
				srcLimit[len(sources)-1] = 0
			}
			k := srcAt[e.U]
			srcPairs[k] = append(srcPairs[k], int32(i))
			if limit > srcLimit[k] {
				srcLimit[k] = limit
			}
		}

		// Phase 1: refresh the collected rows in parallel against the
		// frozen h. Sources are partitioned so each bound row is written
		// by exactly one worker; workers read only h and their own
		// scratch, and additionally record each of their pairs' exact
		// snapshot distances (disjoint exact[i] slots), so the only
		// synchronization needed is the join. The rows are stamped with
		// the snapshot's accepted-edge count — the prefix their bounds
		// are proven on. A worker converts its own panic into a typed
		// error and bails out early on cancellation or a checksum
		// failure; either way it reaches wg.Done, so the pool drains.
		snapEdges := len(res.Edges)
		var wg sync.WaitGroup
		chunk := (len(sources) + workers - 1) / workers
		for w := 0; w < workers && w*chunk < len(sources); w++ {
			start, end := w*chunk, (w+1)*chunk
			if end > len(sources) {
				end = len(sources)
			}
			wg.Add(1)
			go func(w int, search *graph.Searcher, scratch []float64, start, end int) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						errs[w] = panicErr(p)
					}
				}()
				for k := start; k < end; k++ {
					if env.active() {
						if cerr := env.cancelled(); cerr != nil {
							errs[w] = cerr
							return
						}
					}
					u := sources[k]
					env.onCertify(pairs[srcPairs[k][0]])
					if oracle != nil {
						// Bounded refresh: the radius covers every one of
						// this row's batch pairs, so each recorded exact[i]
						// decides its pair — settled entries are exact and
						// +Inf certifies "beyond limit" (see refreshExact).
						search.BoundedDistances(h, u, hubRefreshRadiusFactor*srcLimit[k], scratch)
					} else {
						search.Distances(h, u, scratch)
					}
					//spannerlint:ignore frozensnap rows are owner-partitioned: each u in rows[w] is folded by exactly one worker
					if ferr := bound.foldRow(u, scratch, snapEdges); ferr != nil {
						errs[w] = ferr
						return
					}
					touchedBy[w] += search.LastTouched()
					for _, i := range srcPairs[k] {
						exact[i] = scratch[pairs[i].V]
					}
				}
			}(w, pool[w], rows[w], start, end)
		}
		wg.Wait()
		if werr := firstWorkerErr(errs); werr != nil {
			return werr
		}
		// Abandon the whole batch on cancellation: no decision was
		// committed yet, and the exact[] snapshot distances may rest on
		// truncated searches (the predicates are monotone, so passing
		// this check proves no phase-1 search was cut short).
		if cerr := env.cancelled(); cerr != nil {
			return cerr
		}
		stats.ParallelRefreshes += len(sources)
		for w := range touchedBy {
			stats.RefreshTouched += touchedBy[w]
			touchedBy[w] = 0
		}

		// Phase 2: replay the uncertified survivors serially in greedy
		// order. Until this batch's first accept the live spanner equals
		// the frozen snapshot, so the exact snapshot distance recorded in
		// phase 1 already is the exact live distance; afterwards each
		// survivor re-runs the exact refresh against the live spanner —
		// exactly the serial scan's decision. Each candidate is folded
		// into EdgesExamined as its decision commits, so an abort
		// mid-batch leaves the exact decided count.
		survivors := 0
		acceptedInBatch := false
		for i, e := range pairs {
			if cached[i] {
				res.EdgesExamined++
				continue
			}
			limit := t * e.W
			if bound.get(e.U, e.V) <= limit {
				if verr := bound.verifyPair(e.U, e.V); verr != nil {
					return verr
				}
				stats.CertifiedSkips++
				res.EdgesExamined++
				continue
			}
			survivors++
			d := exact[i]
			if acceptedInBatch {
				var rerr error
				d, rerr = refreshExact(e.U, e.V, limit)
				if rerr != nil {
					return rerr
				}
				if env.active() {
					if cerr := env.cancelled(); cerr != nil {
						return cerr
					}
				}
			}
			if d <= limit {
				stats.SerialSkips++
				res.EdgesExamined++
				continue
			}
			if aerr := accept(e); aerr != nil {
				return aerr
			}
			res.EdgesExamined++
			acceptedInBatch = true
		}

		bound.maybeCheckpoint(len(res.Edges))

		// Adapt only on full-width rounds: a batch truncated at a bucket
		// boundary says nothing about snapshot staleness, the signal the
		// policy tracks.
		if adaptive && len(pairs) == batch {
			batch = env.clampBatch(adaptBatch(batch, survivors, len(pairs)))
		}
		batch = checkBudget(batch)
	}
	stats.FinalBatchSize = batch
	finish()
	return nil
}

// sortedPairs materializes all n(n-1)/2 interpoint distances of m as edges
// in the greedy scan order: non-decreasing weight, ties broken by endpoint
// ids. This is the classic supply the streamed sources replace; it remains
// the reference for the serial engine and the Materialize option.
func sortedPairs(m metric.Metric) []graph.Edge {
	n := m.N()
	pairs := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, graph.Edge{U: i, V: j, W: m.Dist(i, j)})
		}
	}
	graph.SortEdges(pairs)
	return pairs
}

// newBoundMatrix allocates the dense n x n upper-bound matrix of the
// serial reference engine: zero diagonal, +Inf (unknown) everywhere else,
// backed by one contiguous allocation.
func newBoundMatrix(n int) [][]float64 {
	flat := make([]float64, n*n)
	for i := range flat {
		flat[i] = graph.Inf
	}
	bound := make([][]float64, n)
	for i := range bound {
		bound[i] = flat[i*n : (i+1)*n : (i+1)*n]
		bound[i][i] = 0
	}
	return bound
}
