package spanner_test

import (
	"fmt"
	"os"
	"path/filepath"

	spanner "repro"
)

// ExampleGreedy builds the greedy 2-spanner of a small weighted graph:
// the unit square survives, and the heavier diagonal is pruned because the
// two-hop path 0-1-2 already realizes stretch 2/1.5 <= 2.
func ExampleGreedy() {
	g := spanner.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(0, 2, 1.5)
	res, err := spanner.Greedy(g, 2)
	if err != nil {
		panic(err)
	}
	for _, e := range res.Edges {
		fmt.Printf("%d-%d w=%g\n", e.U, e.V, e.W)
	}
	fmt.Printf("size=%d weight=%g\n", res.Size(), res.Weight)
	// Output:
	// 0-1 w=1
	// 0-3 w=1
	// 1-2 w=1
	// 2-3 w=1
	// size=4 weight=4
}

// ExampleGreedyParallel runs the batched-parallel graph engine and shows
// its defining property: the output is bit-identical to the sequential
// scan, for any worker count.
func ExampleGreedyParallel() {
	g := spanner.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(0, 2, 1.5)
	seq, err := spanner.Greedy(g, 2)
	if err != nil {
		panic(err)
	}
	par, err := spanner.GreedyParallel(g, 2, 4)
	if err != nil {
		panic(err)
	}
	identical := seq.Size() == par.Size() && seq.Weight == par.Weight
	for i := range seq.Edges {
		identical = identical && seq.Edges[i] == par.Edges[i]
	}
	fmt.Println("identical output:", identical)
	// Output:
	// identical output: true
}

// ExampleGreedyMetricFast spans a finite metric space — four points on a
// line — with the cached-bound path-greedy: only the consecutive gaps are
// kept, since every longer pair is 2-spanned by the chain between them.
func ExampleGreedyMetricFast() {
	m, err := spanner.NewEuclidean([][]float64{{0}, {1}, {2}, {4}})
	if err != nil {
		panic(err)
	}
	res, err := spanner.GreedyMetricFast(m, 2)
	if err != nil {
		panic(err)
	}
	for _, e := range res.Edges {
		fmt.Printf("%d-%d w=%g\n", e.U, e.V, e.W)
	}
	// Output:
	// 0-1 w=1
	// 1-2 w=1
	// 2-3 w=2
}

// ExampleGreedyMetricParallel runs the batched cached-bound metric engine
// with an explicit worker count; like the graph engine, its output is
// bit-identical to the serial scan.
func ExampleGreedyMetricParallel() {
	m, err := spanner.NewEuclidean([][]float64{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}})
	if err != nil {
		panic(err)
	}
	seq, err := spanner.GreedyMetricFast(m, 1.5)
	if err != nil {
		panic(err)
	}
	par, err := spanner.GreedyMetricParallel(m, 1.5, 4)
	if err != nil {
		panic(err)
	}
	identical := seq.Size() == par.Size() && seq.Weight == par.Weight
	for i := range seq.Edges {
		identical = identical && seq.Edges[i] == par.Edges[i]
	}
	fmt.Printf("size=%d identical=%v\n", par.Size(), identical)
	// Output:
	// size=4 identical=true
}

// ExampleGreedyMetricParallelOpts_hubs enables the hub-label
// certification fast path: the Hubs option maintains k landmark distance
// arrays over the growing spanner and answers most skip certifications
// from the triangle-inequality upper bound min_h d(u,h)+d(h,v) instead of
// running a Dijkstra. Hub bounds only ever overestimate spanner
// distances, so a hub-certified skip is a decision the exact engine would
// also make — the output is bit-identical with hubs on or off, at any k.
func ExampleGreedyMetricParallelOpts_hubs() {
	pts := make([][]float64, 0, 64)
	for i := 0; i < 64; i++ {
		pts = append(pts, []float64{float64(i % 8), float64(i / 8)})
	}
	m, err := spanner.NewEuclidean(pts)
	if err != nil {
		panic(err)
	}
	plain, err := spanner.GreedyMetricParallel(m, 1.5, 1)
	if err != nil {
		panic(err)
	}
	var stats spanner.MetricParallelStats
	hubbed, err := spanner.GreedyMetricParallelOpts(m, 1.5, spanner.MetricParallelOptions{
		Workers: 1,
		Hubs:    spanner.DefaultHubs(len(pts)),
		Stats:   &stats,
	})
	if err != nil {
		panic(err)
	}
	identical := plain.Size() == hubbed.Size() && plain.Weight == hubbed.Weight
	for i := range plain.Edges {
		identical = identical && plain.Edges[i] == hubbed.Edges[i]
	}
	fmt.Printf("size=%d identical=%v hub-certified=%v\n",
		hubbed.Size(), identical, stats.HubSkips > 0)
	// Output:
	// size=112 identical=true hub-certified=true
}

// ExampleNewIncremental maintains a greedy spanner under point
// insertions: the inserted point is spliced into the greedy scan at its
// weight position and only the disturbed tail is replayed, yet the result
// is bit-identical to rebuilding from scratch on the union.
func ExampleNewIncremental() {
	m, err := spanner.NewEuclidean([][]float64{{0}, {1}, {2}, {4}})
	if err != nil {
		panic(err)
	}
	inc, err := spanner.NewIncremental(m, 2, 4)
	if err != nil {
		panic(err)
	}
	res0, err := inc.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("size=%d\n", res0.Size())

	union, err := spanner.NewEuclidean([][]float64{{0}, {1}, {2}, {4}, {8}})
	if err != nil {
		panic(err)
	}
	if err := inc.Insert(union); err != nil {
		panic(err)
	}
	scratch, err := spanner.GreedyMetric(union, 2)
	if err != nil {
		panic(err)
	}
	res, err := inc.Result()
	if err != nil {
		panic(err)
	}
	identical := res.Size() == scratch.Size() && res.Weight == scratch.Weight
	for i := range scratch.Edges {
		identical = identical && res.Edges[i] == scratch.Edges[i]
	}
	fmt.Printf("size=%d identical=%v\n", res.Size(), identical)
	// Output:
	// size=3
	// size=4 identical=true
}

// ExampleIncremental_Delete removes a point from a maintained spanner:
// the greedy scan is rebased backward to the earliest accepted edge the
// deleted point touched and only the tail is replayed from checkpointed
// state, yet the result — densely renumbered over the survivors — is
// bit-identical to rebuilding from scratch without the point.
func ExampleIncremental_Delete() {
	pts := [][]float64{{0}, {1}, {2}, {3}, {8}}
	m, err := spanner.NewEuclidean(pts)
	if err != nil {
		panic(err)
	}
	inc, err := spanner.NewIncremental(m, 2, 4)
	if err != nil {
		panic(err)
	}
	if err := inc.Delete(2); err != nil { // remove the point at x=2
		panic(err)
	}
	survivors, err := spanner.NewEuclidean([][]float64{{0}, {1}, {3}, {8}})
	if err != nil {
		panic(err)
	}
	scratch, err := spanner.GreedyMetric(survivors, 2)
	if err != nil {
		panic(err)
	}
	res, err := inc.Result()
	if err != nil {
		panic(err)
	}
	identical := res.Size() == scratch.Size() && res.Weight == scratch.Weight
	for i := range scratch.Edges {
		identical = identical && res.Edges[i] == scratch.Edges[i]
	}
	for _, e := range res.Edges {
		fmt.Printf("%d-%d w=%g\n", e.U, e.V, e.W)
	}
	fmt.Printf("identical=%v\n", identical)
	// Output:
	// 0-1 w=1
	// 1-2 w=2
	// 2-3 w=5
	// identical=true
}

// ExampleSave persists a maintained spanner to a versioned snapshot and
// warm-starts a new one from it with Load: the load skips the greedy
// scan entirely, restores the cached certification state, and the
// reloaded spanner keeps accepting dynamic updates — with a result
// bit-identical to the original's.
func ExampleSave() {
	pts := [][]float64{{0}, {1}, {2}, {4}, {8}}
	m, err := spanner.NewEuclidean(pts)
	if err != nil {
		panic(err)
	}
	inc, err := spanner.NewIncremental(m, 2, 1)
	if err != nil {
		panic(err)
	}
	path := filepath.Join(os.TempDir(), "spanner-example.snap")
	defer os.Remove(path)
	if err := spanner.Save(inc, path); err != nil {
		panic(err)
	}
	loaded, err := spanner.Load(path, 1)
	if err != nil {
		panic(err)
	}
	if err := loaded.Delete(2); err != nil { // dynamic ops keep working
		panic(err)
	}
	orig, err := inc.Result()
	if err != nil {
		panic(err)
	}
	res, err := loaded.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("saved size=%d loaded-after-delete size=%d\n", orig.Size(), res.Size())
	// Output:
	// saved size=4 loaded-after-delete size=3
}

// ExampleVerifySpanner audits a constructed spanner against the paper's
// Section 2 definition and reports the worst stretch over the input's
// edges — here the pruned diagonal, detoured by the two-hop unit path.
func ExampleVerifySpanner() {
	g := spanner.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(0, 2, 1.5)
	res, err := spanner.Greedy(g, 2)
	if err != nil {
		panic(err)
	}
	rep, err := spanner.VerifySpanner(res.Graph(), g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max stretch %.3f at pair (%d, %d)\n", rep.MaxStretch, rep.WorstU, rep.WorstV)
	// Output:
	// max stretch 1.333 at pair (0, 2)
}
