package bench

import (
	"math/rand"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/nettree"
	"repro/internal/verify"
)

// The ablation experiments (A1–A3) probe the design choices DESIGN.md calls
// out in the approximate-greedy pipeline: the deputy degree-reduction in
// the base spanner, the bucket width mu, and the two-tier (cluster-first,
// exact-fallback) distance certification.

// A1Deputies compares the net-tree base spanner with and without the
// degree-reduction deputies on the unbounded-degree ring gadget and on
// uniform points. Deputies should cap the gadget's hub degree without
// inflating edges on benign inputs.
func A1Deputies(scale Scale) (*Table, error) {
	tab := &Table{
		Title:  "A1 (ablation): deputy degree-reduction in the base spanner",
		Header: []string{"instance", "n", "deputies", "edges", "max degree"},
		Caption: "Deputies bound the hub degree on the ring gadget; on uniform points they\n" +
			"should be inert (the hot-degree threshold never trips).",
	}
	cfgs := [][2]int{{4, 8}}
	if scale == Full {
		cfgs = [][2]int{{4, 8}, {8, 8}}
	}
	const eps = 0.35
	for _, cfg := range cfgs {
		m, err := gen.UnboundedDegreeMetric(cfg[0], cfg[1], 0.1)
		if err != nil {
			return nil, err
		}
		for _, disable := range []bool{false, true} {
			g, _, err := nettree.BaseSpanner(m, nettree.BaseSpannerOptions{Eps: eps, DisableDeputies: disable})
			if err != nil {
				return nil, err
			}
			tab.AddRow("ring gadget", itoa(m.N()), onOff(!disable), itoa(g.M()), itoa(g.MaxDegree()))
		}
	}
	rng := rand.New(rand.NewSource(99))
	n := 100
	if scale == Full {
		n = 300
	}
	mu := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
	for _, disable := range []bool{false, true} {
		g, _, err := nettree.BaseSpanner(mu, nettree.BaseSpannerOptions{Eps: eps, DisableDeputies: disable})
		if err != nil {
			return nil, err
		}
		tab.AddRow("uniform 2d", itoa(n), onOff(!disable), itoa(g.M()), itoa(g.MaxDegree()))
	}
	return tab, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// A2BucketWidth sweeps the bucket ratio mu of the approximate-greedy
// simulation: wider buckets mean fewer cluster-graph rebuilds but staler
// cluster radii (built for the bucket floor), trading construction time
// against kept edges.
func A2BucketWidth(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "A2 (ablation): approximate-greedy bucket width mu",
		Header: []string{"n", "mu", "ms", "rebuilds", "edges", "lightness"},
	}
	rng := rand.New(rand.NewSource(seed))
	n := 128
	if scale == Full {
		n = 512
	}
	m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
	for _, mu := range []float64{1.3, 2, 4, 8} {
		start := time.Now()
		res, err := approx.Greedy(m, approx.Options{Eps: 0.5, Mu: mu})
		if err != nil {
			return nil, err
		}
		ms := time.Since(start).Seconds() * 1000
		light, err := verify.MetricLightness(res.Spanner, m)
		if err != nil {
			return nil, err
		}
		tab.AddRow(itoa(n), f2(mu), f2(ms), itoa(res.Stats.ClusterRebuilds),
			itoa(res.Spanner.M()), f2(light))
	}
	return tab, nil
}

// A3Certification splits the approximate-greedy skip decisions between the
// cluster-graph certificate and the exact fallback across cluster radii
// (delta). Larger delta makes the cluster view coarser: cheaper queries,
// fewer certified skips.
func A3Certification(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "A3 (ablation): two-tier certification (cluster radius delta)",
		Header: []string{"n", "delta", "cluster skips", "exact skips", "kept", "ms"},
		Caption: "Skips certified by the coarse cluster view avoid exact searches entirely;\n" +
			"delta tunes how much of the skip load the cluster graph absorbs.",
	}
	rng := rand.New(rand.NewSource(seed))
	n := 128
	if scale == Full {
		n = 512
	}
	m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
	for _, delta := range []float64{0.004, 0.016, 0.0625, 0.25} {
		start := time.Now()
		res, err := approx.Greedy(m, approx.Options{Eps: 0.5, Delta: delta})
		if err != nil {
			return nil, err
		}
		ms := time.Since(start).Seconds() * 1000
		tab.AddRow(itoa(n), f3(delta), itoa(res.Stats.SkippedByCluster),
			itoa(res.Stats.SkippedByExact), itoa(res.Stats.HeavyKept), f2(ms))
	}
	return tab, nil
}

// A4ParallelBatchWidth sweeps the batch width of the batched-parallel
// greedy engine (the graph analogue of A2's bucket ratio): wider batches
// amortize the worker fan-out but test more edges against a staler
// snapshot, pushing them into the serial re-check. Width 0 is the adaptive
// policy, which should land near the best fixed width without tuning.
func A4ParallelBatchWidth(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "A4 (ablation): batched-parallel greedy batch width",
		Header: []string{"n", "m", "batch", "ms", "batches", "certified", "serial skips", "kept", "final width"},
		Caption: "certified = skips proven in parallel against the frozen snapshot; serial skips\n" +
			"fell through to the ordered re-check. batch=adaptive grows/shrinks with the certify rate.",
	}
	rng := rand.New(rand.NewSource(seed))
	n := 150
	if scale == Full {
		n = 800
	}
	g := gen.ErdosRenyi(rng, n, 0.2, 0.5, 10)
	for _, batch := range []int{32, 128, 512, 2048, 0} {
		name := itoa(batch)
		if batch == 0 {
			name = "adaptive"
		}
		var stats core.ParallelStats
		start := time.Now()
		res, err := core.GreedyGraphParallelOpts(g, 3, core.ParallelOptions{
			Workers: 4, BatchSize: batch, Stats: &stats,
		})
		if err != nil {
			return nil, err
		}
		ms := time.Since(start).Seconds() * 1000
		tab.AddRow(itoa(n), itoa(g.M()), name, f2(ms), itoa(stats.Batches),
			itoa(stats.CertifiedSkips), itoa(stats.SerialSkips), itoa(res.Size()),
			itoa(stats.FinalBatchSize))
	}
	return tab, nil
}

// A5MetricBatchWidth sweeps the batch width of the batched-parallel metric
// engine on a Euclidean point set and a graph-induced distance matrix.
// Wider batches amortize the row-refresh fan-out but certify against a
// staler snapshot, pushing pairs into the serial re-check; width 0 is the
// adaptive policy, which should land near the best fixed width without
// tuning on both metric kinds.
func A5MetricBatchWidth(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "A5 (ablation): batched-parallel metric engine batch width",
		Header: []string{"kind", "n", "batch", "ms", "batches", "cached", "certified", "serial skips", "par refresh", "ser refresh", "kept", "final width"},
		Caption: "cached = skips certified by an existing bound with no search; certified = skips proven\n" +
			"by a parallel row refresh on the frozen snapshot; serial skips fell through to the\n" +
			"ordered re-check. batch=adaptive grows/shrinks with the certify rate.",
	}
	rng := rand.New(rand.NewSource(seed))
	n := 150
	if scale == Full {
		n = 500
	}
	type instance struct {
		kind string
		m    metric.Metric
		t    float64
	}
	instances := []instance{
		{"euclidean", metric.MustEuclidean(gen.UniformPoints(rng, n, 2)), 1.5},
	}
	induced, err := metric.FromGraph(gen.ErdosRenyi(rng, n*2/3, 0.1, 0.5, 10))
	if err != nil {
		return nil, err
	}
	instances = append(instances, instance{"graph-induced", induced, 3})
	for _, inst := range instances {
		for _, batch := range []int{32, 128, 512, 2048, 0} {
			name := itoa(batch)
			if batch == 0 {
				name = "adaptive"
			}
			var stats core.MetricParallelStats
			start := time.Now()
			_, err := core.GreedyMetricFastParallelOpts(inst.m, inst.t, core.MetricParallelOptions{
				Workers: 4, BatchSize: batch, Stats: &stats,
			})
			if err != nil {
				return nil, err
			}
			ms := time.Since(start).Seconds() * 1000
			tab.AddRow(inst.kind, itoa(inst.m.N()), name, f2(ms), itoa(stats.Batches),
				itoa(stats.CachedSkips), itoa(stats.CertifiedSkips), itoa(stats.SerialSkips),
				itoa(stats.ParallelRefreshes), itoa(stats.SerialRefreshes), itoa(stats.Kept),
				itoa(stats.FinalBatchSize))
		}
	}
	return tab, nil
}

// Ablations runs A1–A5 in order.
func Ablations(scale Scale, seed int64) ([]*Table, error) {
	var out []*Table
	t1, err := A1Deputies(scale)
	if err != nil {
		return out, err
	}
	out = append(out, t1)
	t2, err := A2BucketWidth(scale, seed)
	if err != nil {
		return out, err
	}
	out = append(out, t2)
	t3, err := A3Certification(scale, seed+1)
	if err != nil {
		return out, err
	}
	out = append(out, t3)
	t4, err := A4ParallelBatchWidth(scale, seed+2)
	if err != nil {
		return out, err
	}
	out = append(out, t4)
	t5, err := A5MetricBatchWidth(scale, seed+3)
	if err != nil {
		return out, err
	}
	return append(out, t5), nil
}
