package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/server"
)

// Example serves a durable spanner over HTTP, reads a distance from the
// published snapshot, applies a durable mutation, and reads against the
// republished version — the full acknowledged-means-durable-and-served
// cycle in one page.
func Example() {
	dir, err := os.MkdirTemp("", "spannerd-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Four collinear points: the greedy spanner preserves line distances
	// exactly, so the served numbers are stable.
	pts := [][]float64{{0, 0}, {3, 0}, {7, 0}, {12, 0}}
	eu, err := metric.NewEuclidean(pts)
	if err != nil {
		panic(err)
	}
	o := persist.Options{Metric: core.MetricParallelOptions{Workers: 1}}
	inc, err := core.NewIncrementalMetric(eu, 1.6, o.Metric)
	if err != nil {
		panic(err)
	}
	d, err := persist.Create(dir, inc, o)
	if err != nil {
		panic(err)
	}

	s, err := server.New(server.Config{
		Durable:        d,
		RequestTimeout: 5 * time.Second,
		MutateTimeout:  10 * time.Second,
		DrainGrace:     2 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(s.Handler())

	var resp struct {
		Distance float64 `json:"distance"`
		Version  uint64  `json:"version"`
	}
	get := func(url string) {
		r, err := http.Get(url)
		if err != nil {
			panic(err)
		}
		defer r.Body.Close()
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			panic(err)
		}
	}

	get(ts.URL + "/v1/distance?u=0&v=3")
	fmt.Printf("distance(0,3) = %.0f at version %d\n", resp.Distance, resp.Version)

	// A mutation is WAL-appended, applied, and republished before the
	// 200 comes back; the next read sees the new version.
	body := bytes.NewBufferString(`{"op":"insert-points","points":[[20,0]]}`)
	r, err := http.Post(ts.URL+"/v1/mutate", "application/json", body)
	if err != nil {
		panic(err)
	}
	r.Body.Close()
	fmt.Println("mutate status:", r.StatusCode)

	get(ts.URL + "/v1/distance?u=0&v=4")
	fmt.Printf("distance(0,4) = %.0f at version %d\n", resp.Distance, resp.Version)

	// Drain stops admission, waits out in-flight requests, flushes, and
	// checkpoints; the state directory is ready for the next process.
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		panic(err)
	}
	fmt.Println("drained")

	// Output:
	// distance(0,3) = 12 at version 1
	// mutate status: 200
	// distance(0,4) = 20 at version 2
	// drained
}
