// Package nettree implements hierarchical nets over doubling metrics and
// the bounded-degree (1+eps)-spanner built from them, in the spirit of
// [CGMZ05, GR08c] (Theorem 2 of the paper). This spanner is the base graph
// G' consumed by the approximate-greedy algorithm of Section 5.
//
// The hierarchy consists of nested nets N_0 ⊇ N_1 ⊇ ... where N_i is an
// r_i-net with r_i = diam / 2^i (top level has a single point). Every level
// contributes "cross" edges between net points within distance gamma * r_i,
// with gamma = Theta(1/eps); the union of cross edges over all levels is a
// (1+eps)-spanner. Per level, packing (Lemma 1 of the paper) bounds each
// point's cross degree by eps^{-O(ddim)}; a point participates in one level
// per scale it remains a net point for, so the total degree is bounded on
// bounded-spread instances and is observed small in practice.
package nettree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/metric"
)

// Tree is a hierarchy of nested nets over a metric space.
type Tree struct {
	M metric.Metric
	// Levels[i] lists the net points of level i (level 0 is the whole
	// point set at radius ~minimum distance... stored top-down: level 0 is
	// the coarsest net, a single point).
	Levels [][]int
	// Radius[i] is the net radius of level i.
	Radius []float64
	// Parent[i][p] gives, for each point p in Levels[i], the index in
	// Levels[i-1] of a net point within Radius[i-1].
	Parent []map[int]int
}

// Build constructs the nested net hierarchy top-down. Level 0 holds the
// single point 0 with radius = diameter; each subsequent level halves the
// radius and refines the previous net (previous net points are kept first,
// so nets are nested). Construction stops when the radius drops below the
// minimum interpoint distance (every point is then a net point).
func Build(m metric.Metric) (*Tree, error) {
	n := m.N()
	if n == 0 {
		return nil, fmt.Errorf("nettree: empty metric")
	}
	t := &Tree{M: m}
	if n == 1 {
		t.Levels = [][]int{{0}}
		t.Radius = []float64{0}
		t.Parent = []map[int]int{{0: 0}}
		return t, nil
	}
	diam := metric.Diameter(m)
	minD := metric.MinDistance(m)
	if diam <= 0 || minD <= 0 {
		return nil, fmt.Errorf("nettree: degenerate metric (duplicate points?)")
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	prev := []int{0}
	t.Levels = append(t.Levels, prev)
	t.Radius = append(t.Radius, diam)
	t.Parent = append(t.Parent, map[int]int{0: 0})
	r := diam / 2
	for {
		// Refine: keep previous net points first so nets are nested, then
		// greedily add uncovered points.
		order := make([]int, 0, n)
		inPrev := make(map[int]bool, len(prev))
		for _, p := range prev {
			inPrev[p] = true
			order = append(order, p)
		}
		for _, p := range all {
			if !inPrev[p] {
				order = append(order, p)
			}
		}
		net := metric.Net(m, order, r)
		// Parent pointers into the previous level.
		parent := make(map[int]int, len(net))
		for _, p := range net {
			best, bestD := -1, math.Inf(1)
			for pi, q := range t.Levels[len(t.Levels)-1] {
				if d := m.Dist(p, q); d < bestD {
					best, bestD = pi, d
				}
			}
			parent[p] = best
		}
		t.Levels = append(t.Levels, net)
		t.Radius = append(t.Radius, r)
		t.Parent = append(t.Parent, parent)
		prev = net
		if len(net) == n || r < minD {
			break
		}
		r /= 2
	}
	return t, nil
}

// Depth reports the number of levels.
func (t *Tree) Depth() int { return len(t.Levels) }

// BaseSpannerOptions configures BaseSpanner.
type BaseSpannerOptions struct {
	// Eps is the stretch slack: the output is a (1+Eps)-spanner.
	Eps float64
	// Gamma overrides the cross-edge reach multiplier; 0 selects the
	// self-tuning ladder ending at the provable 4 + 16/Eps.
	Gamma float64
	// DisableDeputies turns off the degree-reduction rerouting (see
	// BaseSpanner); used by ablation benchmarks.
	DisableDeputies bool
}

// BaseSpanner builds the net-tree (1+eps)-spanner: for every level i, all
// pairs of level-i net points within distance gamma * r_i are joined.
// Standard analysis gives stretch 1+eps for gamma >= 4 + 16/eps and
// per-level degree gamma^O(ddim) by packing.
//
// The worst-case gamma is very pessimistic in practice, so unless
// opts.Gamma is set, BaseSpanner tries a ladder of optimistic reach
// multipliers, exhaustively verifying the stretch of each candidate, and
// falls back to the provable constant (accepted without verification) only
// if the cheaper ones fail. This keeps both the theoretical guarantee and
// practical sparsity.
func BaseSpanner(m metric.Metric, opts BaseSpannerOptions) (*graph.Graph, *Tree, error) {
	if opts.Eps <= 0 {
		return nil, nil, fmt.Errorf("nettree: eps must be positive, got %v", opts.Eps)
	}
	t, err := Build(m)
	if err != nil {
		return nil, nil, err
	}
	// Deputy shift budget: endpoints may be rerouted by at most this
	// fraction of the level radius, so the relative detour on any cross
	// edge (length >= the level radius) stays within the eps slack.
	shift := 0.0
	if !opts.DisableDeputies {
		// Rerouting both endpoints by shift*d lengthens the certified path
		// for an edge of length d by ~2*shift*d, so shift = eps/2 spends
		// exactly the available slack (verification below backstops).
		shift = opts.Eps / 2
	}
	// Geometric ladder from an optimistic reach up to the provable one.
	lo, hi := 2+2/opts.Eps, 4+16/opts.Eps
	if opts.Gamma > 0 {
		lo, hi = opts.Gamma, opts.Gamma
	}
	cands := gatherCross(m, t, hi)
	if opts.Gamma > 0 {
		return buildCross(m, t, cands, opts.Gamma, shift), t, nil
	}
	ladder := []float64{lo, lo * 1.5, lo * 2.25, lo * 3.375}
	for i := range ladder {
		if ladder[i] > hi {
			ladder[i] = hi
		}
	}
	ladder = append(ladder, hi)
	for _, gamma := range ladder {
		g := buildCross(m, t, cands, gamma, shift)
		if metricStretchOK(g, m, 1+opts.Eps) {
			return g, t, nil
		}
	}
	// Deputy rerouting costs stretch constants; the non-deputized
	// construction at the provable gamma is the worst-case-correct
	// fallback (accepted without verification).
	return buildCross(m, t, cands, hi, 0), t, nil
}

// crossCand is a candidate cross edge: the pair (p, q) at the coarsest
// level where both are net points, with its length.
type crossCand struct {
	p, q  int
	d     float64
	level int32
}

// gatherCross enumerates each net-point pair exactly once — at the level
// where its later endpoint enters the hierarchy (nets are nested, so that
// is the coarsest level where both are present, the level whose reach
// governs the pair) — keeping pairs within gammaMax * level radius. The
// result is sorted by length so buildCross can materialize edges
// shortest-first.
func gatherCross(m metric.Metric, t *Tree, gammaMax float64) []crossCand {
	entry := make([]int32, m.N())
	for i := range entry {
		entry[i] = -1
	}
	for li, net := range t.Levels {
		for _, p := range net {
			if entry[p] < 0 {
				entry[p] = int32(li)
			}
		}
	}
	var cands []crossCand
	for li, net := range t.Levels {
		reach := gammaMax * t.Radius[li]
		for _, p := range net {
			if int(entry[p]) != li {
				continue // p seen at a coarser level; pairs handled there
			}
			for _, q := range net {
				if q == p {
					continue
				}
				// Count new-new pairs once (p < q); new-old pairs are
				// counted from the new endpoint only.
				if int(entry[q]) == li && q < p {
					continue
				}
				if d := m.Dist(p, q); d <= reach && d > 0 {
					cands = append(cands, crossCand{p: p, q: q, d: d, level: int32(li)})
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.d != b.d {
			return a.d < b.d
		}
		if a.p != b.p {
			return a.p < b.p
		}
		return a.q < b.q
	})
	return cands
}

// buildCross adds, for every level, edges between net points within
// gamma * radius of each other.
//
// With a positive shift budget the construction performs a degree-reduction
// step in the spirit of [CGMZ05, GR08c]: instead of wiring the net points p
// and q directly, each endpoint of an edge of length d is replaced by a
// low-degree "deputy" drawn from the ball B(endpoint, shift*d). Deputies
// keep a vertex's load bounded by spreading a persistent net point's edges
// across its surroundings — without them, a point that stays a net point
// across many scales (the hub of the unbounded-degree ring gadget)
// accumulates degree n-1. Rerouting by shift*d changes relative path
// weights by O(shift), which the eps slack (and the self-tuning
// verification in BaseSpanner) absorbs. Scaling the deputy ball with the
// edge length rather than the level radius is what lets far-away scales
// delegate to geometrically closer points.
func buildCross(m metric.Metric, t *Tree, cands []crossCand, gamma, shift float64) *graph.Graph {
	g := graph.New(m.N())
	n := m.N()
	degree := make([]int, n)
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		d := m.Dist(u, v)
		if d <= 0 || g.HasEdge(u, v) {
			return
		}
		g.MustAddEdge(u, v, d)
		degree[u]++
		degree[v]++
	}
	// deputy returns the minimum-degree point within shift*d of p (p
	// itself included). The scan only fires once p is hot (degree above a
	// packing-sized threshold), so well-behaved instances never pay for
	// it; on adversarial instances it is O(n) per rerouted edge.
	const hotDegree = 24
	deputy := func(p int, d float64) int {
		if shift == 0 || degree[p] < hotDegree {
			return p
		}
		reach := shift * d
		best, bestDeg := p, degree[p]
		for x := 0; x < n; x++ {
			if degree[x] < bestDeg && m.Dist(p, x) <= reach {
				best, bestDeg = x, degree[x]
			}
		}
		return best
	}
	// Materialize the in-reach candidates in non-decreasing length order
	// (gatherCross pre-sorted them): a vertex under degree pressure heats
	// up on its short (cheap-to-keep) edges first and delegates the long
	// ones, which have the most room in the shift budget.
	for _, c := range cands {
		if c.d <= gamma*t.Radius[c.level] {
			addEdge(deputy(c.p, c.d), deputy(c.q, c.d))
		}
	}
	// The bottom level contains every point, and within it all pairs at
	// distance <= gamma * r_bottom are connected; nearest neighbors are
	// always joined, so the spanner is connected.
	return g
}

// metricStretchOK exhaustively checks that g is a t-spanner of m.
func metricStretchOK(g *graph.Graph, m metric.Metric, t float64) bool {
	n := m.N()
	search := graph.NewSearcher(n)
	dist := make([]float64, n)
	for u := 0; u < n; u++ {
		search.Distances(g, u, dist)
		for v := u + 1; v < n; v++ {
			if dist[v] > t*m.Dist(u, v)+1e-12 {
				return false
			}
		}
	}
	return true
}
