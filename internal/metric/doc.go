// Package metric defines the finite metric-space abstraction used by the
// metric spanner constructions (greedy path-greedy, approximate-greedy,
// Θ/Yao/WSPD baselines) and provides concrete implementations: Euclidean
// point sets of any dimension, explicit distance matrices, and shortest-path
// metrics induced by graphs (the M_G of the paper's Section 2). It also
// implements doubling-dimension estimation via r-nets and exhaustive metric
// sanity checks.
//
// A Metric is simply N() points with a symmetric positive Dist; every
// construction in this repository consumes metrics through that interface,
// so Euclidean, matrix-backed, and graph-induced spaces are
// interchangeable — the equivalence tests for the parallel cached-bound
// metric engine sweep all three. CompleteGraph materializes a metric as the
// complete weighted graph the greedy algorithm scans; FromSpanner builds
// the M_H of Section 4, the metric of a spanner itself, on which the
// paper's existential-optimality argument is made.
package metric
