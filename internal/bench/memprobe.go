package bench

import (
	"runtime"
	"time"
)

// measureAlloc runs f once and reports its heap cost: peak is the highest
// heap occupancy observed above the pre-run baseline (sampled every
// millisecond plus a final reading, so short transients are approximated,
// not exact), and total is the cumulative allocation volume
// (MemStats.TotalAlloc delta). The runtime is GC'd before the run so the
// baseline is live data only. Memory probes run separately from timing
// repetitions: the sampler's ReadMemStats calls briefly stop the world and
// would skew wall-clock medians.
func measureAlloc(f func() error) (peak, total uint64, err error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	stop := make(chan struct{})
	peakCh := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		var high uint64
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				peakCh <- high
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > high {
					high = ms.HeapAlloc
				}
			}
		}
	}()

	err = f()

	var final runtime.MemStats
	runtime.ReadMemStats(&final)
	close(stop)
	high := <-peakCh
	if final.HeapAlloc > high {
		high = final.HeapAlloc
	}
	if high > base.HeapAlloc {
		peak = high - base.HeapAlloc
	}
	total = final.TotalAlloc - base.TotalAlloc
	return peak, total, err
}

// mb formats a byte count as mebibytes with 1 decimal.
func mb(b uint64) string { return f1(float64(b) / (1 << 20)) }
