package metric

import (
	"math"
	"sort"
)

// Net computes a greedy r-net of the metric restricted to the given points
// (all points if pts is nil): a maximal subset with pairwise distances > r,
// such that every point is within r of some net point. Points are considered
// in the given (or natural) order, so the result is deterministic. O(n * k)
// where k is the net size.
func Net(m Metric, pts []int, r float64) []int {
	if pts == nil {
		pts = make([]int, m.N())
		for i := range pts {
			pts[i] = i
		}
	}
	var net []int
	for _, p := range pts {
		covered := false
		for _, c := range net {
			if m.Dist(p, c) <= r {
				covered = true
				break
			}
		}
		if !covered {
			net = append(net, p)
		}
	}
	return net
}

// NetAssignment computes an r-net and, for every input point, the index
// (into the returned net) of a net point within distance r. Net centers are
// assigned to themselves.
func NetAssignment(m Metric, pts []int, r float64) (net []int, assign map[int]int) {
	if pts == nil {
		pts = make([]int, m.N())
		for i := range pts {
			pts[i] = i
		}
	}
	assign = make(map[int]int, len(pts))
	for _, p := range pts {
		found := -1
		for ci, c := range net {
			if m.Dist(p, c) <= r {
				found = ci
				break
			}
		}
		if found < 0 {
			net = append(net, p)
			found = len(net) - 1
		}
		assign[p] = found
	}
	return net, assign
}

// DoublingDimension estimates the doubling dimension of m empirically: for a
// geometric ladder of radii r, it measures how many (r/2)-net points fall in
// any r-ball, and returns log2 of the worst ratio observed. For a metric
// with true doubling dimension ddim the estimate is O(ddim) (standard
// packing bounds lose constant factors, cf. Lemma 1 of the paper); the
// estimator's value is in comparing families, e.g. verifying that a
// "stretched" metric M_H has dimension within a constant of M's
// (Observation 9). O(n^2 log(spread)).
func DoublingDimension(m Metric) float64 {
	n := m.N()
	if n <= 2 {
		return 0
	}
	minD := MinDistance(m)
	maxD := Diameter(m)
	if minD <= 0 || maxD <= 0 {
		return 0
	}
	worst := 1
	for r := maxD; r > minD/2; r /= 2 {
		// Count, for each ball B(c, r), the number of (r/2)-separated points
		// inside it; by the packing lemma this is at most 2^O(ddim).
		half := Net(m, nil, r/2)
		for c := 0; c < n; c++ {
			cnt := 0
			for _, p := range half {
				if m.Dist(c, p) <= r {
					cnt++
				}
			}
			if cnt > worst {
				worst = cnt
			}
		}
	}
	return math.Log2(float64(worst))
}

// PackingCount returns the maximum number of points with pairwise distance
// greater than r that fit inside the ball B(center, radR), via a greedy
// packing. Used to validate Lemma 1-style packing bounds in tests.
func PackingCount(m Metric, center int, radR, r float64) int {
	var packed []int
	// Deterministic order: by distance from center, nearest first.
	type pd struct {
		p int
		d float64
	}
	var in []pd
	for p := 0; p < m.N(); p++ {
		if d := m.Dist(center, p); d <= radR {
			in = append(in, pd{p, d})
		}
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i].d != in[j].d {
			return in[i].d < in[j].d
		}
		return in[i].p < in[j].p
	})
	for _, cand := range in {
		ok := true
		for _, q := range packed {
			if m.Dist(cand.p, q) <= r {
				ok = false
				break
			}
		}
		if ok {
			packed = append(packed, cand.p)
		}
	}
	return len(packed)
}
