package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds a connected-ish random weighted graph for query tests.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		if u > 0 {
			g.MustAddEdge(rng.Intn(u), u, 0.5+9.5*rng.Float64())
		}
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v, 0.5+9.5*rng.Float64())
			}
		}
	}
	return g
}

// near reports whether a and b agree up to summation-order rounding: the
// two searches add the same path weights in different orders, so results
// may differ in the last couple of ulps but no more.
func near(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*scale
}

// TestBidirDistanceWithinMatchesUnidirectional cross-checks the bounded
// bidirectional query against the one-sided DistanceWithin on random
// graphs, random pairs, and limits above and below the true distance.
// Limits are kept a relative 1% away from the true distance so that the
// accept/reject decision is well-separated from summation-order rounding;
// reported distances must then agree to ~ulp precision.
func TestBidirDistanceWithinMatchesUnidirectional(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, cfg := range []struct {
		n int
		p float64
	}{{30, 0.1}, {60, 0.05}, {60, 0.3}, {120, 0.02}} {
		g := randomGraph(rng, cfg.n, cfg.p)
		search := NewSearcher(cfg.n)
		for trial := 0; trial < 300; trial++ {
			u, v := rng.Intn(cfg.n), rng.Intn(cfg.n)
			exact := g.DijkstraTo(u, v)
			limits := []float64{Inf, exact * 1.5, exact * 1.01, exact * 0.99, exact * 0.5, 0}
			for _, limit := range limits {
				wantD, wantOK := g.DistanceWithin(u, v, limit)
				gotD, gotOK := search.BidirDistanceWithin(g, u, v, limit)
				if wantOK != gotOK || (wantOK && !near(wantD, gotD)) {
					t.Fatalf("n=%d p=%v (%d,%d) limit=%v: unidirectional (%v,%v) vs bidirectional (%v,%v)",
						cfg.n, cfg.p, u, v, limit, wantD, wantOK, gotD, gotOK)
				}
				// The allocating convenience method must agree exactly.
				gd, gok := g.BidirDistanceWithin(u, v, limit)
				if gok != gotOK || (gok && gd != gotD) {
					t.Fatalf("Graph.BidirDistanceWithin diverges from Searcher: (%v,%v) vs (%v,%v)", gd, gok, gotD, gotOK)
				}
			}
		}
	}
}

// TestBidirDistanceWithinDisconnected checks behaviour across components.
func TestBidirDistanceWithinDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	s := NewSearcher(4)
	if _, ok := s.BidirDistanceWithin(g, 0, 2, Inf); ok {
		t.Fatal("found a path between components")
	}
	if d, ok := s.BidirDistanceWithin(g, 0, 1, 1); !ok || d != 1 {
		t.Fatalf("adjacent pair: got (%v, %v)", d, ok)
	}
	if d, ok := s.BidirDistanceWithin(g, 0, 0, 0); !ok || d != 0 {
		t.Fatalf("self pair: got (%v, %v)", d, ok)
	}
}

// TestBidirectionalDistanceStillExact guards the pre-existing unbounded
// entry point after its refactor onto the shared scratch core.
func TestBidirectionalDistanceStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 80, 0.08)
	for trial := 0; trial < 200; trial++ {
		u, v := rng.Intn(80), rng.Intn(80)
		if got, want := g.BidirectionalDistance(u, v), g.DijkstraTo(u, v); !near(got, want) {
			t.Fatalf("(%d,%d): bidirectional %v, Dijkstra %v", u, v, got, want)
		}
	}
}
