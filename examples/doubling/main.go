// Doubling metrics: exact greedy vs approximate-greedy (Sections 4 and 5
// of the paper). On a clustered point set (a doubling metric), both achieve
// constant lightness (Corollary 10 / Theorem 6), but the approximate-greedy
// algorithm avoids the exact greedy's quadratic distance examinations — and
// on the multi-scale ring gadget it also avoids the greedy's unbounded
// degree.
//
//	go run ./examples/doubling
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	spanner "repro"
	"repro/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "doubling:", err)
		os.Exit(1)
	}
}

func run() error {
	const eps = 0.5
	rng := rand.New(rand.NewSource(3))
	pts := gen.ClusteredPoints(rng, 300, 2, 10, 0.015)
	m, err := spanner.NewEuclidean(pts)
	if err != nil {
		return err
	}
	fmt.Printf("metric: %d clustered points in the plane, target stretch %.1f\n\n", m.N(), 1+eps)

	start := time.Now()
	exact, err := spanner.GreedyMetricFast(m, 1+eps)
	if err != nil {
		return err
	}
	exactDur := time.Since(start)
	exactLight, err := spanner.MetricLightness(exact.Graph(), m)
	if err != nil {
		return err
	}
	fmt.Printf("exact greedy:   %6d edges  lightness %.2f  maxdeg %3d  (%v, examined %d pairs)\n",
		exact.Size(), exactLight, exact.MaxDegree(), exactDur.Round(time.Millisecond), exact.EdgesExamined)

	start = time.Now()
	apx, err := spanner.ApproxGreedy(m, spanner.ApproxOptions{Eps: eps})
	if err != nil {
		return err
	}
	apxDur := time.Since(start)
	apxLight, err := spanner.MetricLightness(apx.Spanner, m)
	if err != nil {
		return err
	}
	fmt.Printf("approx greedy:  %6d edges  lightness %.2f  maxdeg %3d  (%v, %d base edges, %d buckets)\n",
		apx.Spanner.M(), apxLight, apx.Spanner.MaxDegree(), apxDur.Round(time.Millisecond),
		apx.Stats.BaseEdges, apx.Stats.Buckets)

	// Both must actually be (1+eps)-spanners.
	if _, err := spanner.VerifyMetricSpanner(exact.Graph(), m, 1+eps); err != nil {
		return err
	}
	if _, err := spanner.VerifyMetricSpanner(apx.Spanner, m, 1+eps); err != nil {
		return err
	}
	fmt.Println("\nboth outputs verified as (1+eps)-spanners over all point pairs ✓")

	// The degree phenomenon that motivates Section 5: on the multi-scale
	// ring gadget the greedy hub degree grows with the instance while the
	// approximate-greedy degree stays flat.
	fmt.Println("\nunbounded-degree gadget ([HM06, Smi09] phenomenon):")
	for _, scales := range []int{2, 4, 6} {
		gm, err := gen.UnboundedDegreeMetric(scales, 8, 0.1)
		if err != nil {
			return err
		}
		ex, err := spanner.GreedyMetric(gm, 1.1)
		if err != nil {
			return err
		}
		ap, err := spanner.ApproxGreedy(gm, spanner.ApproxOptions{Eps: 0.1})
		if err != nil {
			return err
		}
		fmt.Printf("  n=%2d: greedy hub degree %2d, approx-greedy max degree %2d\n",
			gm.N(), ex.Graph().Degree(0), ap.Spanner.MaxDegree())
	}
	return nil
}
