package verify

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
)

func TestMetricSpannerParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 60, 2))
	res, err := core.GreedyMetricFast(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	serial, err := MetricSpanner(h, m, 1.5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4, 100} {
		par, err := MetricSpannerParallel(h, m, 1.5, 1e-9, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Pairs != serial.Pairs {
			t.Fatalf("workers=%d: pairs %d vs %d", workers, par.Pairs, serial.Pairs)
		}
		if par.MaxStretch != serial.MaxStretch {
			t.Fatalf("workers=%d: max stretch %v vs %v", workers, par.MaxStretch, serial.MaxStretch)
		}
	}
}

func TestMetricSpannerParallelDetectsViolation(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 0}, {2, 0}})
	// Missing edges: stretch unbounded.
	h := graph.New(3)
	h.MustAddEdge(0, 1, 1)
	if _, err := MetricSpannerParallel(h, m, 10, 1e-9, 2); err == nil {
		t.Fatal("violation not detected")
	}
	// Vertex-count mismatch.
	if _, err := MetricSpannerParallel(graph.New(2), m, 1, 0, 2); err == nil {
		t.Fatal("vertex mismatch accepted")
	}
}

func TestMetricSpannerParallelEmpty(t *testing.T) {
	m := metric.MustEuclidean(nil)
	rep, err := MetricSpannerParallel(graph.New(0), m, 1, 0, 4)
	if err != nil || rep.Pairs != 0 {
		t.Fatalf("empty metric: %v, %+v", err, rep)
	}
}
