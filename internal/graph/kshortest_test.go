package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestKShortestPathsSmallGraph(t *testing.T) {
	// 0-1-3 (weight 2), 0-2-3 (weight 3), 0-3 (weight 4).
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(0, 3, 4)
	paths := g.KShortestPaths(0, 3, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	want := []float64{2, 3, 4}
	for i, p := range paths {
		if p.Weight != want[i] {
			t.Fatalf("path %d weight = %v, want %v (paths: %+v)", i, p.Weight, want[i], paths)
		}
	}
	// First path must be 0-1-3.
	if !sameVertices(paths[0].Vertices, []int{0, 1, 3}) {
		t.Fatalf("first path = %v", paths[0].Vertices)
	}
}

func TestKShortestPathsSimpleOnly(t *testing.T) {
	// Triangle: only 2 simple paths between any pair.
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	paths := g.KShortestPaths(0, 2, 10)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 simple paths", len(paths))
	}
	for _, p := range paths {
		seen := map[int]bool{}
		for _, v := range p.Vertices {
			if seen[v] {
				t.Fatalf("path %v revisits vertex %d", p.Vertices, v)
			}
			seen[v] = true
		}
	}
}

func TestKShortestPathsDegenerate(t *testing.T) {
	g := pathGraph(3)
	if got := g.KShortestPaths(0, 0, 3); got != nil {
		t.Fatal("src == dst should give nil")
	}
	if got := g.KShortestPaths(0, 2, 0); got != nil {
		t.Fatal("k = 0 should give nil")
	}
	disc := New(3)
	disc.MustAddEdge(0, 1, 1)
	if got := disc.KShortestPaths(0, 2, 2); got != nil {
		t.Fatal("unreachable dst should give nil")
	}
}

func TestKShortestSecondMatchesSecondShortestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := randomConnectedGraph(rng, 20, 30)
		u, v := rng.Intn(20), rng.Intn(20)
		if u == v {
			continue
		}
		want := g.SecondShortestPath(u, v)
		paths := g.KShortestPaths(u, v, 2)
		got := math.Inf(1)
		if len(paths) >= 2 {
			got = paths[1].Weight
		}
		if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("trial %d (%d->%d): k=2 gives %v, SecondShortestPath gives %v", trial, u, v, got, want)
		}
	}
}

func TestKShortestPathsOrderedAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnectedGraph(rng, 15, 25)
	paths := g.KShortestPaths(0, 14, 6)
	if len(paths) == 0 {
		t.Fatal("no paths found")
	}
	prev := 0.0
	for i, p := range paths {
		if p.Weight < prev-1e-12 {
			t.Fatalf("paths out of order at %d", i)
		}
		prev = p.Weight
		// Weight must match the vertex sequence.
		if math.Abs(pathWeight(g, p.Vertices)-p.Weight) > 1e-9 {
			t.Fatalf("path %d weight mismatch", i)
		}
		if p.Vertices[0] != 0 || p.Vertices[len(p.Vertices)-1] != 14 {
			t.Fatalf("path %d endpoints wrong: %v", i, p.Vertices)
		}
	}
	// Paths must be pairwise distinct.
	seen := map[string]bool{}
	for _, p := range paths {
		k := pathKey(p.Vertices)
		if seen[k] {
			t.Fatal("duplicate path")
		}
		seen[k] = true
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomConnectedGraph(rng, 50, 100)
		for q := 0; q < 30; q++ {
			u, v := rng.Intn(50), rng.Intn(50)
			want := g.DijkstraTo(u, v)
			got := g.BidirectionalDistance(u, v)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("(%d->%d): bidirectional %v, dijkstra %v", u, v, got, want)
			}
		}
	}
}

func TestBidirectionalUnreachableAndSelf(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2)
	if d := g.BidirectionalDistance(0, 3); !math.IsInf(d, 1) {
		t.Fatalf("unreachable = %v, want Inf", d)
	}
	if d := g.BidirectionalDistance(2, 2); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}
