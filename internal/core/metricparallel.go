package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/metric"
)

// MetricParallelOptions configures GreedyMetricFastParallelOpts.
type MetricParallelOptions struct {
	// Workers is the number of goroutines refreshing bound-matrix rows
	// concurrently; 0 selects GOMAXPROCS. With Workers == 1 the engine
	// degenerates to the serial cached-bound scan (GreedyMetricFastSerial
	// with reusable search scratch).
	Workers int
	// BatchSize fixes the number of sorted pairs examined per
	// certification round. 0 (the default) selects adaptive batching: the
	// width grows while batches certify cleanly and shrinks when too many
	// pairs fall through to the serial re-check.
	BatchSize int
	// Stats, when non-nil, is filled with engine counters for ablations
	// and benchmarks.
	Stats *MetricParallelStats
}

// MetricParallelStats reports how the batched metric engine spent its
// effort. CachedSkips + CertifiedSkips + SerialSkips + Kept equals the
// number of pairs examined (n(n-1)/2).
type MetricParallelStats struct {
	// Batches is the number of certification rounds.
	Batches int
	// CachedSkips counts pairs certified by an already-cached bound, with
	// no Dijkstra at all.
	CachedSkips int
	// CertifiedSkips counts pairs certified by a parallel row refresh
	// against the frozen snapshot.
	CertifiedSkips int
	// SerialSkips counts pairs that survived both cache and snapshot
	// certification but were skipped by the ordered serial re-check.
	SerialSkips int
	// Kept counts accepted edges.
	Kept int
	// ParallelRefreshes counts bound-matrix rows recomputed concurrently
	// against frozen snapshots.
	ParallelRefreshes int
	// SerialRefreshes counts rows recomputed by the ordered re-check
	// against the live spanner.
	SerialRefreshes int
	// FinalBatchSize is the adaptive batch width at the end of the scan.
	FinalBatchSize int
}

// GreedyMetricFastParallel computes the greedy t-spanner of a finite metric
// space like GreedyMetricFastSerial — cached distance bounds in the spirit
// of Bose et al. [BCF+10] — but refreshes the cached bound matrix's rows
// concurrently over `workers` goroutines (0 selects GOMAXPROCS). The output
// — edge sequence, weight, and EdgesExamined — is deterministic
// (independent of workers, batching, and scheduling) and bit-identical to
// GreedyMetricFastSerial's, because both engines realize the exact greedy
// decision for every pair.
//
// The engine scans the sorted pair list in batches. A serial pre-pass
// certifies every pair the cached bounds already cover. The remaining
// pairs' source rows are then refreshed concurrently with full Dijkstra
// runs against the *frozen* spanner snapshot H0 taken at the batch
// boundary; a bound proven on H0 stays a valid upper bound for every later
// spanner H ⊇ H0 because adding edges only shrinks distances, so a skip it
// certifies is final. Each row belongs to exactly one worker and workers
// write nothing else, so the only synchronization is the join. Pairs the
// snapshot cannot certify are re-checked serially, in exact greedy order,
// against the live spanner — refresh row, re-test, then accept — exactly
// the serial algorithm's decision procedure.
func GreedyMetricFastParallel(m metric.Metric, t float64, workers int) (*Result, error) {
	return GreedyMetricFastParallelOpts(m, t, MetricParallelOptions{Workers: workers})
}

// GreedyMetricFastParallelOpts is GreedyMetricFastParallel with explicit
// batching controls; see MetricParallelOptions.
func GreedyMetricFastParallelOpts(m metric.Metric, t float64, opts MetricParallelOptions) (*Result, error) {
	if !validStretch(t) {
		return nil, fmt.Errorf("core: stretch %v out of range [1, inf)", t)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats := opts.Stats
	if stats == nil {
		stats = &MetricParallelStats{}
	}
	*stats = MetricParallelStats{}

	n := m.N()
	res := &Result{N: n, Stretch: t}
	if n <= 1 {
		return res, nil
	}
	pairs := sortedPairs(m)
	res.EdgesExamined = len(pairs)

	h := graph.New(n)
	bound := newBoundMatrix(n)
	serial := graph.NewSearcher(n)
	row := make([]float64, n)

	// refresh recomputes row u against the live spanner and folds it into
	// the bound matrix symmetrically, exactly like the serial engine.
	refresh := func(u int) {
		serial.Distances(h, u, row)
		bu := bound[u]
		for v := 0; v < n; v++ {
			if row[v] < bu[v] {
				bu[v] = row[v]
				bound[v][u] = row[v]
			}
		}
		stats.SerialRefreshes++
	}
	accept := func(e graph.Edge) {
		h.MustAddEdge(e.U, e.V, e.W)
		bound[e.U][e.V] = e.W
		bound[e.V][e.U] = e.W
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
		stats.Kept++
	}

	if workers == 1 {
		// Serial fast path: the cached-bound scan with reusable scratch,
		// no snapshot pass.
		stats.FinalBatchSize = serialBatchStat(opts.BatchSize, len(pairs))
		for _, e := range pairs {
			limit := t * e.W
			if bound[e.U][e.V] <= limit {
				stats.CachedSkips++
				continue
			}
			refresh(e.U)
			if bound[e.U][e.V] <= limit {
				stats.SerialSkips++
				continue
			}
			accept(e)
		}
		return res, nil
	}

	pool := make([]*graph.Searcher, workers)
	rows := make([][]float64, workers)
	for i := range pool {
		pool[i] = graph.NewSearcher(n)
		rows[i] = make([]float64, n)
	}
	cached := make([]bool, len(pairs))
	// sources collects the distinct row indices the current batch needs
	// refreshed; inBatch stamps membership per round.
	var sources []int
	inBatch := make([]int, n)
	for i := range inBatch {
		inBatch[i] = -1
	}

	batch := opts.BatchSize
	adaptive := batch <= 0
	if adaptive {
		batch = initialBatch(workers)
	}

	for lo := 0; lo < len(pairs); {
		hi := lo + batch
		if hi > len(pairs) {
			hi = len(pairs)
		}
		round := stats.Batches
		stats.Batches++

		// Serial pre-pass: certify what the cache already covers and
		// collect the rows the rest of the batch wants refreshed.
		sources = sources[:0]
		for i := lo; i < hi; i++ {
			e := pairs[i]
			if cached[i] = bound[e.U][e.V] <= t*e.W; cached[i] {
				stats.CachedSkips++
			} else if inBatch[e.U] != round {
				inBatch[e.U] = round
				sources = append(sources, e.U)
			}
		}

		// Phase 1: refresh the collected rows in parallel against the
		// frozen h. Sources are partitioned so each bound row is written
		// by exactly one worker, and workers read only h and their own
		// scratch, so the only synchronization needed is the join.
		var wg sync.WaitGroup
		chunk := (len(sources) + workers - 1) / workers
		for w := 0; w < workers && w*chunk < len(sources); w++ {
			start, end := w*chunk, (w+1)*chunk
			if end > len(sources) {
				end = len(sources)
			}
			wg.Add(1)
			go func(search *graph.Searcher, scratch []float64, srcs []int) {
				defer wg.Done()
				for _, u := range srcs {
					search.Distances(h, u, scratch)
					bu := bound[u]
					for v := range bu {
						if scratch[v] < bu[v] {
							bu[v] = scratch[v]
						}
					}
				}
			}(pool[w], rows[w], sources[start:end])
		}
		wg.Wait()
		stats.ParallelRefreshes += len(sources)
		// Fold the refreshed rows into their mirror entries serially (the
		// workers could not: column writes would collide across rows).
		for _, u := range sources {
			bu := bound[u]
			for v := range bu {
				if bu[v] < bound[v][u] {
					bound[v][u] = bu[v]
				}
			}
		}

		// Phase 2: replay the uncertified survivors serially in greedy
		// order against the live spanner. A survivor may still be skipped
		// here when an edge accepted earlier in this same batch — or a
		// fresher bound row — covers it, exactly as the serial scan would
		// decide.
		survivors := 0
		acceptedInBatch := false
		for i := lo; i < hi; i++ {
			if cached[i] {
				continue
			}
			e := pairs[i]
			limit := t * e.W
			if bound[e.U][e.V] <= limit {
				stats.CertifiedSkips++
				continue
			}
			survivors++
			// Until this batch's first accept the live spanner still
			// equals the frozen snapshot, and every survivor's row was
			// refreshed against it in phase 1 — bound[e.U][e.V] is already
			// the exact live distance, so the serial refresh would change
			// nothing.
			if acceptedInBatch {
				refresh(e.U)
				if bound[e.U][e.V] <= limit {
					stats.SerialSkips++
					continue
				}
			}
			accept(e)
			acceptedInBatch = true
		}

		span := hi - lo
		lo = hi
		if adaptive {
			batch = adaptBatch(batch, survivors, span)
		}
	}
	stats.FinalBatchSize = batch
	return res, nil
}

// sortedPairs materializes all n(n-1)/2 interpoint distances of m as edges
// in the greedy scan order: non-decreasing weight, ties broken by endpoint
// ids.
func sortedPairs(m metric.Metric) []graph.Edge {
	n := m.N()
	pairs := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, graph.Edge{U: i, V: j, W: m.Dist(i, j)})
		}
	}
	graph.SortEdges(pairs)
	return pairs
}

// newBoundMatrix allocates the n x n upper-bound matrix: zero diagonal,
// +Inf (unknown) everywhere else, backed by one contiguous allocation.
func newBoundMatrix(n int) [][]float64 {
	flat := make([]float64, n*n)
	for i := range flat {
		flat[i] = graph.Inf
	}
	bound := make([][]float64, n)
	for i := range bound {
		bound[i] = flat[i*n : (i+1)*n : (i+1)*n]
		bound[i][i] = 0
	}
	return bound
}
