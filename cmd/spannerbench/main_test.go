package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-scale", "bogus"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run(context.Background(), []string{"-exp", "e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-bogus-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// e1 is deterministic and fast; it exercises the full path through
	// table rendering.
	if err := run(context.Background(), []string{"-exp", "e1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallAblation(t *testing.T) {
	if err := run(context.Background(), []string{"-exp", "a2", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricBatchAblation(t *testing.T) {
	if err := run(context.Background(), []string{"-exp", "a5", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIncrementalBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_incremental.json")
	if err := run(context.Background(), []string{"-exp", "incrementalbench", "-scale", "small", "-workers", "1", "-json", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedyMetricBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_greedymetric.json")
	if err := run(context.Background(), []string{"-exp", "greedymetricbench", "-scale", "small", "-workers", "2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
