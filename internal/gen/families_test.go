package gen

import (
	"math/rand"
	"testing"
)

func TestHypercube(t *testing.T) {
	q3 := Hypercube(3)
	if q3.N() != 8 || q3.M() != 12 {
		t.Fatalf("Q3: N=%d M=%d, want 8, 12", q3.N(), q3.M())
	}
	for v := 0; v < 8; v++ {
		if q3.Degree(v) != 3 {
			t.Fatalf("Q3 degree(%d) = %d", v, q3.Degree(v))
		}
	}
	if !q3.Connected() {
		t.Fatal("Q3 disconnected")
	}
	if g := q3.GirthUnweighted(); g != 4 {
		t.Fatalf("Q3 girth = %d, want 4", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Hypercube(0) should panic")
		}
	}()
	Hypercube(0)
}

func TestCirculant(t *testing.T) {
	// C_8(1, 2): degree 4, connected.
	g, err := Circulant(8, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.M() != 16 {
		t.Fatalf("C8(1,2): N=%d M=%d, want 8, 16", g.N(), g.M())
	}
	for v := 0; v < 8; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	// Duplicate / zero / mirror steps collapse.
	g2, err := Circulant(6, []int{2, 2, 4, 0, 6})
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 6 {
		t.Fatalf("C6(2): M=%d, want 6", g2.M())
	}
	if _, err := Circulant(2, []int{1}); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := Circulant(6, []int{0, 6}); err == nil {
		t.Fatal("edgeless steps accepted")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range [][2]int{{20, 3}, {30, 4}, {16, 5}} {
		n, d := cfg[0], cfg[1]
		if n*d%2 != 0 {
			continue
		}
		g, err := RandomRegular(rng, n, d)
		if err != nil {
			t.Fatalf("(%d, %d): %v", n, d, err)
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != d {
				t.Fatalf("(%d, %d): degree(%d) = %d", n, d, v, g.Degree(v))
			}
		}
	}
	if _, err := RandomRegular(rng, 9, 3); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(rng, 5, 5); err == nil {
		t.Fatal("d >= n accepted")
	}
}

func TestWeightedPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Grid(4, 4)
	p := WeightedPerturbation(rng, g, 0.1)
	if p.M() != g.M() || p.N() != g.N() {
		t.Fatal("structure changed")
	}
	for i, e := range p.Edges() {
		orig := g.Edges()[i]
		if e.W < orig.W || e.W > orig.W*1.1 {
			t.Fatalf("edge %d weight %v outside [%v, %v]", i, e.W, orig.W, orig.W*1.1)
		}
	}
	// Perturbed weights should be pairwise distinct with overwhelming
	// probability.
	seen := map[float64]bool{}
	for _, e := range p.Edges() {
		if seen[e.W] {
			t.Fatal("tie survived perturbation")
		}
		seen[e.W] = true
	}
}
