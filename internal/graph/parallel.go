package graph

import (
	"runtime"
	"sync"
)

// APSPParallel computes all-pairs shortest paths like APSP but fans the
// per-source Dijkstra runs out over `workers` goroutines (0 selects
// GOMAXPROCS). Each worker owns its Searcher, so no synchronization is
// needed beyond handing out source indices; all goroutines are joined
// before returning.
func (g *Graph) APSPParallel(workers int) [][]float64 {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([][]float64, n)
	if n == 0 {
		return out
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			search := NewSearcher(n)
			for src := range next {
				row := make([]float64, n)
				search.Distances(g, src, row)
				out[src] = row // distinct index per worker: no race
			}
		}()
	}
	for src := 0; src < n; src++ {
		next <- src
	}
	close(next)
	wg.Wait()
	return out
}
