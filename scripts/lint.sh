#!/usr/bin/env bash
# lint.sh — the full local lint gate, one command, mirroring CI:
# formatting, go vet, package doc comments, module verification, and the
# spannerlint soundness analyzers (see README "Static analysis").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:"
  echo "$out"
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== package doc comments"
./scripts/check_pkgdoc.sh

echo "== go mod verify"
go mod verify

echo "== spannerlint"
go run ./cmd/spannerlint ./...

echo "lint clean"
