package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Hypercube returns the d-dimensional hypercube graph Q_d (2^d vertices,
// d*2^{d-1} unit edges): a classical network-synchronizer topology from the
// paper's distributed-computing motivation ([PU89a] is about hypercube
// synchronizers).
func Hypercube(d int) *graph.Graph {
	if d < 1 || d > 20 {
		panic(fmt.Sprintf("gen: hypercube dimension %d out of range [1, 20]", d))
	}
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.MustAddEdge(v, u, 1)
			}
		}
	}
	return g
}

// Circulant returns the circulant graph C_n(S): vertices 0..n-1 with unit
// edges i -- (i+s) mod n for each step s in S. Circulants provide
// vertex-transitive instances with tunable girth and degree.
func Circulant(n int, steps []int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: circulant needs n >= 3, got %d", n)
	}
	g := graph.New(n)
	seen := make(map[int]bool)
	for _, s := range steps {
		s = ((s % n) + n) % n
		if s == 0 || seen[s] || seen[n-s] {
			continue
		}
		seen[s] = true
		for i := 0; i < n; i++ {
			j := (i + s) % n
			if !g.HasEdge(i, j) {
				g.MustAddEdge(i, j, 1)
			}
		}
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("gen: circulant steps %v produce no edges", steps)
	}
	return g, nil
}

// RandomRegular samples a d-regular graph on n vertices via the
// configuration model with rejection of self-loops and multi-edges,
// restarting until a simple matching is found. Requires n*d even and
// d < n. Random regular graphs are expanders with high probability —
// near-worst-case instances for spanner sparsification.
func RandomRegular(rng *rand.Rand, n, d int) (*graph.Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("gen: degree %d out of range [1, %d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d must be even, got %d*%d", n, d)
	}
	const maxRestarts = 500
	for attempt := 0; attempt < maxRestarts; attempt++ {
		// Stubs: d copies of each vertex, shuffled and paired up.
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := graph.New(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.MustAddEdge(u, v, 1)
		}
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: failed to sample a simple %d-regular graph on %d vertices", d, n)
}

// WeightedPerturbation returns a copy of g with each edge weight multiplied
// by an independent uniform factor in [1, 1+jitter]. Used to break weight
// ties so the greedy spanner is unique and instances are in general
// position.
func WeightedPerturbation(rng *rand.Rand, g *graph.Graph, jitter float64) *graph.Graph {
	out := graph.New(g.N())
	for _, e := range g.Edges() {
		out.MustAddEdge(e.U, e.V, e.W*(1+rng.Float64()*jitter))
	}
	return out
}
