package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func mustDigest(t *testing.T, d *Durable) uint64 {
	t.Helper()
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	return core.ResultDigest(res)
}

// newEuclidDurable creates a durable Euclidean spanner on the first 8
// universe points.
func newEuclidDurable(t *testing.T, dir string, o Options) *Durable {
	t.Helper()
	inc, err := core.NewIncrementalMetric(mustEuclid(t, euclidPts()[:8]), 1.6, o.Metric)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Create(dir, inc, o)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPersistDurableLifecycle drives a durable spanner through inserts,
// deletes, a policy change, an explicit flush, and a checkpoint, closing
// and reopening between phases: every reopen must recover the exact
// result digest the closed instance held, and continue accepting
// operations that keep matching an undisturbed twin.
func TestPersistDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	o := Options{Metric: core.MetricParallelOptions{Workers: 1, Hubs: 3}}
	pts := euclidPts()

	// Twin: the same ops on a plain engine, for digest comparison.
	twin, err := core.NewIncrementalMetric(mustEuclid(t, pts[:8]), 1.6, o.Metric)
	if err != nil {
		t.Fatal(err)
	}

	d := newEuclidDurable(t, dir, o)
	step := func(name string, derr, terr error) {
		t.Helper()
		if derr != nil || terr != nil {
			t.Fatalf("%s: durable %v, twin %v", name, derr, terr)
		}
	}
	step("insert", d.Insert(mustEuclid(t, pts[:11])), twin.Insert(mustEuclid(t, pts[:11])))
	step("delete", d.Delete(2, 9), twin.Delete(2, 9))
	step("policy", d.SetPolicy(core.IncrementalPolicy{CoalesceUntilQuery: true}),
		twin.SetPolicy(core.IncrementalPolicy{CoalesceUntilQuery: true}))
	step("insert2", d.Insert(mustEuclid(t, append(curPts(pts, []int{0, 1, 3, 4, 5, 6, 7, 8, 10}), pts[11], pts[12]))),
		twin.Insert(mustEuclid(t, append(curPts(pts, []int{0, 1, 3, 4, 5, 6, 7, 8, 10}), pts[11], pts[12]))))
	step("flush", d.Flush(), twin.Flush())

	want := mustDigest(t, d)
	if twinRes, err := twin.Result(); err != nil || core.ResultDigest(twinRes) != want {
		t.Fatalf("durable digest diverged from plain engine before reopen (err %v)", err)
	}
	if d.OpSeq() != 5 {
		t.Fatalf("OpSeq %d, want 5", d.OpSeq())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDigest(t, d2); got != want {
		t.Fatalf("reopened digest %x, want %x", got, want)
	}
	if d2.OpSeq() != 5 || d2.Gen() != 1 {
		t.Fatalf("reopened OpSeq %d gen %d, want 5/1", d2.OpSeq(), d2.Gen())
	}

	// Checkpoint rotates the generation; ops keep flowing afterwards.
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d2.Gen() != 2 {
		t.Fatalf("gen %d after checkpoint, want 2", d2.Gen())
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 1 snapshot not collected: %v", err)
	}
	step("delete2", d2.Delete(0), twin.Delete(0))
	want = mustDigest(t, d2)
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	d3, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if got := mustDigest(t, d3); got != want {
		t.Fatalf("post-checkpoint reopen digest %x, want %x", got, want)
	}
	if twinRes, err := twin.Result(); err != nil || core.ResultDigest(twinRes) != want {
		t.Fatalf("twin diverged at the end (err %v)", err)
	}
}

// curPts picks the rows of a universe by index, modelling the surviving
// prefix an Insert union must carry.
func curPts(pts [][]float64, idx []int) [][]float64 {
	out := make([][]float64, 0, len(idx))
	for _, i := range idx {
		out = append(out, pts[i])
	}
	return out
}

// TestPersistDurableGraph: the graph-mode durable path logs and recovers
// edge updates.
func TestPersistDurableGraph(t *testing.T) {
	dir := t.TempDir()
	o := Options{Graph: core.ParallelOptions{Workers: 1, Hubs: 3}}
	build := func() *core.IncrementalSpanner {
		g := graph.New(10)
		for i := 0; i < 9; i++ {
			g.MustAddEdge(i, i+1, float64(1+i%3))
		}
		g.MustAddEdge(0, 9, 7)
		inc, err := core.NewIncrementalGraph(g, 1.5, o.Graph)
		if err != nil {
			t.Fatal(err)
		}
		return inc
	}
	d, err := Create(dir, build(), o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InsertEdges(graph.Edge{U: 2, V: 7, W: 2.5}, graph.Edge{U: 3, V: 8, W: 1.25}); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteEdges(graph.Edge{U: 0, V: 9, W: 7}); err != nil {
		t.Fatal(err)
	}
	// A mismatched delete is rejected before anything reaches the log.
	if err := d.DeleteEdges(graph.Edge{U: 0, V: 9, W: 7}); !errors.Is(err, graph.ErrInvalidInput) {
		t.Fatalf("double delete: got %v", err)
	}
	if d.OpSeq() != 2 {
		t.Fatalf("OpSeq %d after a rejected op, want 2", d.OpSeq())
	}
	want := mustDigest(t, d)
	d.Close()
	d2, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := mustDigest(t, d2); got != want {
		t.Fatalf("reopened digest %x, want %x", got, want)
	}
}

// TestPersistOpenErrors: the recovery entry point distinguishes an absent
// state (ErrNoState), a corrupt one (ErrCorruptState), a foreign version
// (ErrUnsupportedVersion), and a WAL bound to the wrong snapshot.
func TestPersistOpenErrors(t *testing.T) {
	empty := t.TempDir()
	if _, err := Open(empty, Options{}); !errors.Is(err, ErrNoState) {
		t.Fatalf("empty dir: got %v, want ErrNoState", err)
	}

	o := Options{Metric: core.MetricParallelOptions{Workers: 1}}
	mk := func() string {
		dir := t.TempDir()
		d := newEuclidDurable(t, dir, o)
		if err := d.Insert(mustEuclid(t, euclidPts()[:10])); err != nil {
			t.Fatal(err)
		}
		d.Close()
		return dir
	}

	// Corrupt the only snapshot: no fallback exists, so Open surfaces it.
	dir := mk()
	snap := filepath.Join(dir, snapName(1))
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, o); !errors.Is(err, core.ErrCorruptState) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorruptState", err)
	}

	// Foreign snapshot version: surfaced as ErrUnsupportedVersion.
	dir = mk()
	snap = filepath.Join(dir, snapName(1))
	data, err = os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[8] = 99
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, o); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("future snapshot: got %v, want ErrUnsupportedVersion", err)
	}

	// A WAL from a different state: the snapshot-digest binding rejects it.
	dirA, dirB := mk(), mk()
	walA := filepath.Join(dirA, walName(1))
	// dirB's spanner differs (delete one point) so its snapshot digest differs.
	dB, err := Open(dirB, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := dB.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := dB.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	dB.Close()
	foreign, err := os.ReadFile(filepath.Join(dirB, walName(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the generation number so only the snapshot binding differs.
	hdr := encodeWalHeader(1, leU64(foreign[24:]))
	if err := os.WriteFile(walA, append(hdr, foreign[walHeaderLen:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dirA, o)
	if !errors.Is(err, core.ErrCorruptState) || !strings.Contains(err.Error(), "bound to") {
		t.Fatalf("foreign wal: got %v, want binding ErrCorruptState", err)
	}
}

// TestPersistWalTailTruncation: garbage appended to the log (a torn
// final record) is dropped at the exact valid prefix on Open, the file is
// truncated, and the recovered spanner both matches the pre-garbage
// state and keeps accepting new operations.
func TestPersistWalTailTruncation(t *testing.T) {
	dir := t.TempDir()
	o := Options{Metric: core.MetricParallelOptions{Workers: 1}}
	d := newEuclidDurable(t, dir, o)
	if err := d.Insert(mustEuclid(t, euclidPts()[:10])); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(3); err != nil {
		t.Fatal(err)
	}
	want := mustDigest(t, d)
	d.Close()

	walPath := filepath.Join(dir, walName(1))
	clean, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2, 3}) // claims 9 payload bytes, has 3
	f.Close()

	d2, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDigest(t, d2); got != want {
		t.Fatalf("recovered digest %x, want %x", got, want)
	}
	if d2.OpSeq() != 2 {
		t.Fatalf("recovered OpSeq %d, want 2", d2.OpSeq())
	}
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(clean) {
		t.Fatalf("wal not truncated to the valid prefix: %d bytes, want %d", len(after), len(clean))
	}
	if err := d2.Delete(0); err != nil {
		t.Fatalf("op after truncating recovery: %v", err)
	}
	d2.Close()
	d3, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.OpSeq() != 3 {
		t.Fatalf("OpSeq %d after post-recovery op, want 3", d3.OpSeq())
	}
}
