// Package cluster implements the cluster-graph machinery of the
// approximate-greedy algorithm (Das–Narasimhan [DN97], Gudmundsson et al.
// [GLN02], Section 5 of the paper). A cluster graph coarsens the partial
// spanner H at a radius r: vertices are grouped into clusters of H-radius
// at most r around net centers, and inter-cluster H-edges become cluster
// edges. Distance queries on the cluster graph sandwich true spanner
// distances:
//
//	cgDist(u, v) <= delta_H(u, v) <= cgDist(u, v) + 2r * (hops + 1)
//
// where hops is the number of cluster edges on the cluster-graph path. The
// approximate-greedy main loop uses the upper bound to certify skips
// (keeping the final stretch sound) and adds the edge otherwise.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/pq"
)

// Graph is a clustered view of a spanner at a fixed radius.
type Graph struct {
	// Radius is the clustering radius r.
	Radius float64
	// Center[v] is the cluster id of vertex v.
	Center []int
	// Centers[c] is the representative vertex of cluster c.
	Centers []int
	// cg is the cluster graph: vertices are cluster ids; each inter-cluster
	// spanner edge (x, y) contributes an edge between the clusters of x and
	// y with weight w(x, y).
	cg *graph.Graph
	// Query scratch, reused across calls (a Graph is not safe for
	// concurrent queries).
	dist    []float64
	touched []int32
	heap    *pq.IndexedMinHeap
}

// Build clusters the spanner h at radius r. Clusters are grown from centers
// in vertex order: the first unassigned vertex becomes a center and absorbs
// every unassigned vertex within H-distance r (bounded Dijkstra). Every
// vertex lands in exactly one cluster whose H-radius is at most r.
func Build(h *graph.Graph, r float64) (*Graph, error) {
	if r < 0 || math.IsNaN(r) {
		return nil, fmt.Errorf("cluster: invalid radius %v", r)
	}
	n := h.N()
	center := make([]int, n)
	for v := range center {
		center[v] = -1
	}
	var centers []int
	search := graph.NewSearcher(n)
	dist := make([]float64, n)
	for v := 0; v < n; v++ {
		if center[v] >= 0 {
			continue
		}
		c := len(centers)
		centers = append(centers, v)
		// Absorb unassigned vertices within H-distance r of v.
		search.BoundedDistances(h, v, r, dist)
		for u := 0; u < n; u++ {
			if center[u] < 0 && dist[u] <= r {
				center[u] = c
			}
		}
	}
	cg := graph.New(len(centers))
	for _, e := range h.Edges() {
		cu, cv := center[e.U], center[e.V]
		if cu != cv {
			cg.MustAddEdge(cu, cv, e.W)
		}
	}
	g := &Graph{Radius: r, Center: center, Centers: centers, cg: cg}
	g.dist = make([]float64, len(centers))
	for i := range g.dist {
		g.dist[i] = math.Inf(1)
	}
	g.heap = pq.NewIndexedMinHeap(len(centers))
	return g, nil
}

// Clusters reports the number of clusters.
func (g *Graph) Clusters() int { return len(g.Centers) }

// AddEdge inserts a new spanner edge (u, v, w) into the clustered view,
// connecting the clusters of u and v. Intra-cluster insertions are no-ops
// (the cluster already spans both endpoints within 2r).
func (g *Graph) AddEdge(u, v int, w float64) {
	cu, cv := g.Center[u], g.Center[v]
	if cu != cv {
		g.cg.MustAddEdge(cu, cv, w)
	}
}

// Query estimates delta_H(u, v), returning a lower and an upper bound.
// The lower bound is the weight-only cluster-graph distance (dropping
// intra-cluster travel can only shorten paths); the upper bound is the
// realizable-cost distance of UpperBound. For vertices in the same cluster
// the bounds are (0, 2r).
func (g *Graph) Query(u, v int) (lower, upper float64) {
	cu, cv := g.Center[u], g.Center[v]
	if cu == cv {
		return 0, 2 * g.Radius
	}
	lower = g.dijkstra(cu, cv, math.Inf(1), 0)
	up, ok := g.UpperBound(u, v, math.Inf(1))
	if !ok {
		upper = math.Inf(1)
	} else {
		upper = up
	}
	return lower, upper
}

// UpperBound returns a certified upper bound on delta_H(u, v): the minimum,
// over cluster-graph paths, of the realizable cost sum(w_i + 2r) + 2r —
// each hop pays its inter-cluster edge plus a worst-case center detour, and
// the final 2r covers reaching u's center and leaving v's center. Crucially
// the Dijkstra minimizes this realizable cost directly (not the edge-weight
// sum), which is what makes the certificate tight on paths made of many
// short edges. The search abandons once costs exceed limit; ok reports
// whether a bound <= limit was found.
func (g *Graph) UpperBound(u, v int, limit float64) (bound float64, ok bool) {
	cu, cv := g.Center[u], g.Center[v]
	if cu == cv {
		b := 2 * g.Radius
		return b, b <= limit
	}
	d := g.dijkstra(cu, cv, limit, 2*g.Radius)
	if math.IsInf(d, 1) {
		return math.Inf(1), false
	}
	b := d + 2*g.Radius
	return b, b <= limit
}

// dijkstra runs Dijkstra on the cluster graph from src to dst where each
// edge of weight w costs w + hopCost, abandoning paths beyond limit. The
// scratch buffers are reset before returning.
func (g *Graph) dijkstra(src, dst int, limit, hopCost float64) float64 {
	result := math.Inf(1)
	g.dist[src] = 0
	g.touched = append(g.touched[:0], int32(src))
	g.heap.Push(src, 0)
	for g.heap.Len() > 0 {
		x, dx := g.heap.Pop()
		if x == dst {
			result = dx
			break
		}
		g.cg.Neighbors(x, func(to int, w float64) bool {
			nd := dx + w + hopCost
			if nd <= limit && nd < g.dist[to] {
				if math.IsInf(g.dist[to], 1) {
					g.touched = append(g.touched, int32(to))
				}
				g.dist[to] = nd
				g.heap.Push(to, nd)
			}
			return true
		})
	}
	for _, v := range g.touched {
		g.dist[v] = math.Inf(1)
	}
	g.heap.Reset()
	return result
}
