package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestSearcherPathWithin checks the reconstructed path against the
// distance oracle on random connected graphs: the vertex sequence must
// start at src, end at dst, traverse only real edges, and sum to exactly
// the distance DistanceWithin reports.
func TestSearcherPathWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(40)
		g := randomConnectedGraph(rng, n, n/2)
		s := NewSearcher(n)
		ref := NewSearcher(n)
		for q := 0; q < 15; q++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			limit := Inf
			if q%3 == 0 {
				limit = rng.Float64() * 20
			}
			path, d, ok := s.PathWithin(g, src, dst, limit)
			refD, refOK := ref.DistanceWithin(g, src, dst, limit)
			if ok != refOK {
				t.Fatalf("n=%d src=%d dst=%d limit=%v: PathWithin ok=%v, DistanceWithin ok=%v", n, src, dst, limit, ok, refOK)
			}
			if !ok {
				if path != nil || !math.IsInf(d, 1) {
					t.Fatalf("miss must return (nil, Inf): got (%v, %v)", path, d)
				}
				continue
			}
			if d != refD {
				t.Fatalf("distance %v, want %v", d, refD)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("path %v does not run %d..%d", path, src, dst)
			}
			var sum float64
			for i := 0; i+1 < len(path); i++ {
				w, edgeOK := minEdgeWeight(g, path[i], path[i+1])
				if !edgeOK {
					t.Fatalf("path step %d-%d is not an edge", path[i], path[i+1])
				}
				sum += w
			}
			if math.Abs(sum-d) > 1e-9*(1+math.Abs(d)) {
				t.Fatalf("path weight %v, reported distance %v", sum, d)
			}
		}
	}
}

// minEdgeWeight returns the lightest parallel edge between u and v.
func minEdgeWeight(g *Graph, u, v int) (float64, bool) {
	best, ok := Inf, false
	g.Neighbors(u, func(to int, w float64) bool {
		if to == v && w < best {
			best, ok = w, true
		}
		return true
	})
	return best, ok
}

// TestSearcherPathWithinStop verifies a stopped search never fabricates a
// path: with the stop predicate pinned true, PathWithin on a long path
// graph must come back empty (the caller's contract is to re-check its
// own signal and discard), and clearing the stop restores exact answers.
func TestSearcherPathWithinStop(t *testing.T) {
	n := 20000 // comfortably above the stop-poll mask, so the predicate is consulted
	g := pathGraph(n)
	s := NewSearcher(n)
	s.SetStop(func() bool { return true })
	if path, _, ok := s.PathWithin(g, 0, n-1, Inf); ok {
		t.Fatalf("stopped search produced a path of %d vertices", len(path))
	}
	s.SetStop(nil)
	path, d, ok := s.PathWithin(g, 0, n-1, Inf)
	if !ok || d != float64(n-1) || len(path) != n {
		t.Fatalf("unstopped search: ok=%v d=%v len=%d, want true/%d/%d", ok, d, len(path), n-1, n)
	}
}
