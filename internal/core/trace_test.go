package core

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metric"
)

// This file is the trace-driven differential suite for the fully dynamic
// spanner: a trace is a sequence of insert/delete/flush/query/policy
// operations over a fixed point universe, and at every quiesce point
// (query, and the final state) the maintained result must be
// bit-identical to a from-scratch greedy build on the survivors. Traces
// come from three sources sharing one runner:
//
//   - TestDynamicTraceDifferential: pseudo-random byte strings decoded
//     into bounded traces, swept across worker and hub counts;
//   - FuzzDynamicTrace: the same decoder under the native fuzzer, with a
//     seeded corpus in testdata/fuzz/FuzzDynamicTrace;
//   - TestGoldenTraces: hand-picked regression scenarios in
//     testdata/traces/*.trace, each pinned to an expected result digest.

const (
	opInsert = iota
	opDelete
	opQuery
	opFlush
	opPolicy
	// opReinsert (script-only) re-appends previously deleted universe
	// points — the "delete then reinsert the same point" scenario, which
	// must behave as inserting a brand-new point with the old coordinates.
	opReinsert
)

type traceOp struct {
	op   int
	k    int   // opInsert: points to insert; opPolicy: policy index
	args []int // opDelete: dense positions (raw bytes for decoded traces)
	raw  bool  // opDelete: args are raw and reduced mod len(alive) at run time
}

// tracePolicies are the policies a trace can switch between.
var tracePolicies = []IncrementalPolicy{
	{},
	{CoalesceUntilQuery: true},
	{CoalesceUntilQuery: true, MinBatch: 4},
}

// traceInfMetric is the +Inf-sprinkled, tie-heavy trace universe: most
// distances are small integers (maximally tied), some pairs are
// unreachable-alike.
type traceInfMetric struct{ n int }

func (m traceInfMetric) N() int { return m.n }
func (m traceInfMetric) Dist(i, j int) float64 {
	if (i*j)%7 == 3 {
		return math.Inf(1)
	}
	if i > j {
		i, j = j, i
	}
	return float64(j - i)
}

const traceUniverse = 20

// traceMetric returns trace universe k: a tie-heavy integer grid, random
// Euclidean points, and the +Inf-sprinkled integer line.
func traceMetric(kind int) metric.Metric {
	switch kind % 3 {
	case 0:
		pts := make([][]float64, traceUniverse)
		for i := range pts {
			pts[i] = []float64{float64(i % 5), float64(i / 5)}
		}
		return metric.MustEuclidean(pts)
	case 1:
		rng := rand.New(rand.NewSource(42))
		pts := make([][]float64, traceUniverse)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 8, rng.Float64() * 8}
		}
		return metric.MustEuclidean(pts)
	default:
		return traceInfMetric{n: traceUniverse}
	}
}

// decodeTrace turns an arbitrary byte string into a bounded trace: byte 0
// selects the metric universe, each further byte one operation (with
// delete positions consuming following bytes). Every byte string decodes
// to a valid trace, which is what makes the fuzz target effective.
func decodeTrace(data []byte) (kind int, ops []traceOp) {
	if len(data) == 0 {
		return 0, nil
	}
	kind = int(data[0]) % 3
	i := 1
	for i < len(data) && len(ops) < 24 {
		b := data[i]
		i++
		switch b % 6 {
		case 0, 1:
			ops = append(ops, traceOp{op: opInsert, k: 1 + int(b>>3)%3})
		case 2:
			c := 1 + int(b>>3)%2
			var picks []int
			for j := 0; j < c && i < len(data); j++ {
				picks = append(picks, int(data[i]))
				i++
			}
			if len(picks) > 0 {
				ops = append(ops, traceOp{op: opDelete, args: picks, raw: true})
			}
		case 3:
			ops = append(ops, traceOp{op: opQuery})
		case 4:
			ops = append(ops, traceOp{op: opFlush})
		case 5:
			ops = append(ops, traceOp{op: opPolicy, k: int(b>>3) % 3})
		}
	}
	return kind, ops
}

// resultDigest compares spanners for bit-identity; it is the exported
// ResultDigest the persistence and crash-recovery suites share.
func resultDigest(res *Result) uint64 { return ResultDigest(res) }

// runTrace executes one trace against a maintained spanner and the
// from-scratch serial reference, differential-checking every quiesce
// point, and returns the final result's digest. init is the initial
// point count (clamped to the universe).
func runTrace(t testing.TB, kind, init int, ops []traceOp, opts MetricParallelOptions, label string) uint64 {
	t.Helper()
	uni := traceMetric(kind)
	if init < 1 {
		init = 1
	}
	if init > uni.N() {
		init = uni.N()
	}
	alive := make([]int, init)
	for i := range alive {
		alive[i] = i
	}
	pool := init
	inc, err := NewIncrementalMetric(restrictMetric(uni, alive), 1.6, opts)
	if err != nil {
		t.Fatalf("%s: build: %v", label, err)
	}
	check := func(at string) {
		got := mustResult(t, inc)
		want, err := GreedyMetricFastSerial(restrictMetric(uni, alive), 1.6)
		if err != nil {
			t.Fatalf("%s/%s: reference: %v", label, at, err)
		}
		equalResults(t.(*testing.T), fmt.Sprintf("%s/%s", label, at), want, got)
		if inc.Pending() != 0 {
			t.Fatalf("%s/%s: %d ops still pending after query", label, at, inc.Pending())
		}
	}
	for oi, op := range ops {
		switch op.op {
		case opInsert:
			k := op.k
			if pool+k > uni.N() {
				k = uni.N() - pool
			}
			if k <= 0 {
				continue
			}
			for j := 0; j < k; j++ {
				alive = append(alive, pool+j)
			}
			pool += k
			if err := inc.Insert(restrictMetric(uni, alive)); err != nil {
				t.Fatalf("%s: op %d Insert: %v", label, oi, err)
			}
		case opDelete:
			var dense []int
			seen := make(map[int]bool)
			for _, p := range op.args {
				if op.raw {
					if len(alive)-len(dense) <= 1 {
						break // keep at least one live point
					}
					p %= len(alive)
				}
				if !seen[p] {
					seen[p] = true
					dense = append(dense, p)
				}
			}
			if len(dense) == 0 {
				continue
			}
			if err := inc.Delete(dense...); err != nil {
				t.Fatalf("%s: op %d Delete(%v): %v", label, oi, dense, err)
			}
			alive = deleteAt(alive, dense)
		case opReinsert:
			alive = append(alive, op.args...)
			if err := inc.Insert(restrictMetric(uni, alive)); err != nil {
				t.Fatalf("%s: op %d reinsert: %v", label, oi, err)
			}
		case opQuery:
			check(fmt.Sprintf("op%d", oi))
		case opFlush:
			if err := inc.Flush(); err != nil {
				t.Fatalf("%s: op %d Flush: %v", label, oi, err)
			}
		case opPolicy:
			if err := inc.SetPolicy(tracePolicies[op.k%len(tracePolicies)]); err != nil {
				t.Fatalf("%s: op %d SetPolicy: %v", label, oi, err)
			}
		}
	}
	check("final")
	return resultDigest(mustResult(t, inc))
}

// traceOptsMatrix is the worker x hub sweep every deterministic trace
// runs under; all cells must agree bit for bit.
var traceOptsMatrix = []MetricParallelOptions{
	{Workers: 1},
	{Workers: 1, Hubs: 4},
	{Workers: 3, Hubs: 0, GuardRows: true},
	{Workers: 3, Hubs: 4},
}

// TestDynamicTraceDifferential generates pseudo-random traces and runs
// each across the worker/hub matrix; every quiesce point must match the
// from-scratch reference and every cell must produce the same digest.
func TestDynamicTraceDifferential(t *testing.T) {
	for seed := int64(0); seed < 18; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 8+rng.Intn(40))
		rng.Read(data)
		kind, ops := decodeTrace(data)
		var digests []uint64
		for ci, opts := range traceOptsMatrix {
			d := runTrace(t, kind, 8, ops, opts, fmt.Sprintf("seed=%d/cell=%d", seed, ci))
			digests = append(digests, d)
		}
		for ci := 1; ci < len(digests); ci++ {
			if digests[ci] != digests[0] {
				t.Fatalf("seed %d: cell %d digest %x differs from cell 0 digest %x", seed, ci, digests[ci], digests[0])
			}
		}
	}
}

// FuzzDynamicTrace is the native-fuzzer entry: any byte string decodes to
// a valid dynamic trace, and the differential property must hold. The
// seeded corpus in testdata/fuzz/FuzzDynamicTrace replays in ordinary
// `go test` runs too.
func FuzzDynamicTrace(f *testing.F) {
	f.Add([]byte{0, 3, 2, 1, 9})
	f.Add([]byte{1, 0, 2, 5, 3, 17, 2, 0, 3})
	f.Add([]byte{2, 2, 19, 2, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		kind, ops := decodeTrace(data)
		a := runTrace(t, kind, 8, ops, MetricParallelOptions{Workers: 1}, "w1")
		b := runTrace(t, kind, 8, ops, MetricParallelOptions{Workers: 3, Hubs: 4}, "w3h4")
		if a != b {
			t.Fatalf("digest mismatch across engines: %x vs %x", a, b)
		}
	})
}

// parseTraceScript parses a golden-trace file: one directive per line
// (kind/init/policy/insert/delete/flush/query), '#' comments, and an
// `expect <hex digest>` line pinning the final result.
func parseTraceScript(t *testing.T, path string) (kind, init int, ops []traceOp, expect uint64, hasExpect bool) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kind, init = 0, 8
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.SplitN(sc.Text(), "#", 2)[0])
		if len(fields) == 0 {
			continue
		}
		bad := func() { t.Fatalf("%s:%d: bad directive %q", path, line, sc.Text()) }
		ints := func() []int {
			out := make([]int, 0, len(fields)-1)
			for _, s := range fields[1:] {
				v, err := strconv.Atoi(s)
				if err != nil {
					bad()
				}
				out = append(out, v)
			}
			return out
		}
		switch fields[0] {
		case "kind":
			switch fields[1] {
			case "grid":
				kind = 0
			case "random":
				kind = 1
			case "inf":
				kind = 2
			default:
				bad()
			}
		case "init":
			init = ints()[0]
		case "policy":
			switch fields[1] {
			case "eager":
				ops = append(ops, traceOp{op: opPolicy, k: 0})
			case "coalesce":
				ops = append(ops, traceOp{op: opPolicy, k: 1})
			case "minbatch":
				ops = append(ops, traceOp{op: opPolicy, k: 2})
			default:
				bad()
			}
		case "insert":
			ops = append(ops, traceOp{op: opInsert, k: ints()[0]})
		case "delete":
			ops = append(ops, traceOp{op: opDelete, args: ints()})
		case "reinsert":
			ops = append(ops, traceOp{op: opReinsert, args: ints()})
		case "flush":
			ops = append(ops, traceOp{op: opFlush})
		case "query":
			ops = append(ops, traceOp{op: opQuery})
		case "expect":
			v, err := strconv.ParseUint(fields[1], 16, 64)
			if err != nil {
				bad()
			}
			expect, hasExpect = v, true
		default:
			bad()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return kind, init, ops, expect, hasExpect
}

// TestGoldenTraces replays the hand-picked regression scenarios under
// testdata/traces and pins each final result to its recorded digest, on
// two engine configurations that must agree. Set GOLDEN_REWRITE=1 to
// refresh the recorded digests after an intentional output change.
func TestGoldenTraces(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "traces", "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("found %d golden traces, want at least 8", len(paths))
	}
	rewrite := os.Getenv("GOLDEN_REWRITE") == "1"
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			kind, init, ops, expect, hasExpect := parseTraceScript(t, path)
			a := runTrace(t, kind, init, ops, MetricParallelOptions{Workers: 1}, "w1")
			b := runTrace(t, kind, init, ops, MetricParallelOptions{Workers: 3, Hubs: 4, GuardRows: true}, "w3h4")
			if a != b {
				t.Fatalf("digest mismatch across engines: %x vs %x", a, b)
			}
			if rewrite {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
				out := lines[:0]
				for _, l := range lines {
					if !strings.HasPrefix(strings.TrimSpace(l), "expect") {
						out = append(out, l)
					}
				}
				out = append(out, fmt.Sprintf("expect %016x", a))
				if err := os.WriteFile(path, []byte(strings.Join(out, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			if !hasExpect {
				t.Fatalf("%s has no expect line (run with GOLDEN_REWRITE=1 to record %016x)", path, a)
			}
			if a != expect {
				t.Fatalf("digest %016x, want %016x", a, expect)
			}
		})
	}
}
