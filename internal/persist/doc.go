// Package persist is the durability layer for maintained spanners: a
// versioned, digest-verified binary snapshot format for the full
// IncrementalSpanner state plus a write-ahead log of dynamic operations,
// with the crash-recovery guarantee the rest of the repo's robustness
// machinery demands — recovery after a crash at ANY point is bit-identical
// (result digest, counters included) to never having crashed.
//
// # On-disk layout
//
// A durable spanner lives in a directory holding one generation of state:
//
//	snap-<gen>   versioned snapshot (see format.go for the section layout)
//	wal-<gen>    write-ahead log of operations applied since the snapshot
//
// Every mutation is encoded, appended to the WAL (length-prefixed,
// FNV-1a-digested), and fsynced BEFORE it is applied in memory, so the log
// is never behind the state it protects. Checkpoint writes snap-<gen+1>
// atomically (temp file + fsync + rename + directory fsync), creates an
// empty wal-<gen+1> bound to the new snapshot's digest, and only then
// garbage-collects the old generation — at every instant at least one
// complete generation is on disk.
//
// # Recovery
//
// Open loads the newest snapshot whose header and per-section digests
// verify (an unreadable newer snapshot is dropped, never half-trusted),
// imports it through core.ImportIncremental, and replays the bound WAL's
// records in order. The first torn or digest-failing record ends the
// replay at that exact prefix and the tail is truncated; a record that
// fails its digest is never applied, and a structurally invalid record
// with a valid digest (real corruption, impossible from a crash) surfaces
// as an error wrapping core.ErrCorruptState. Unknown format versions
// surface as ErrUnsupportedVersion.
//
// # Crash injection
//
// Every IO point — each stage of a WAL append, each stage of an atomic
// snapshot or WAL-header write, each garbage-collected file, and each
// replayed record during recovery — consults Hooks.Crash with a
// deterministic sequence number. A firing hook materializes that point's
// worst-case surviving disk state (a torn half-record, an unsynced append
// rolled back, a renamed file lost before the directory entry was synced)
// and kills the Durable with ErrSimulatedCrash, so the chaos suite can
// enumerate every crash window and prove recovery equivalence at each one.
package persist
