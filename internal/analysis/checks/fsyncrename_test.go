package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestFsyncrenameFixtures(t *testing.T) {
	analysistest.Run(t, checks.Fsyncrename, analysistest.Fixture("fsyncrename"))
}
