package graph

import (
	"math/rand"
	"testing"
)

// TestRelaxNewEdgeMatchesRecompute maintains a single-source distance
// array across a random edge-insertion sequence purely through
// RelaxNewEdge and cross-checks it against a from-scratch Dijkstra after
// every insertion — the exactness invariant the hub oracle rests on. The
// sequence starts from an empty graph (where the all-+Inf array is
// trivially exact) and inserts edges in random order, so it exercises
// component merges, unreachable regions, weight ties, and no-op
// insertions alike.
func TestRelaxNewEdgeMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(25)
		src := rng.Intn(n)
		g := New(n)
		search := NewSearcher(n)
		dist := make([]float64, n)
		for v := range dist {
			dist[v] = Inf
		}
		dist[src] = 0
		want := make([]float64, n)
		m := 2 * n
		for e := 0; e < m; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := float64(1+rng.Intn(8)) / 2
			g.MustAddEdge(u, v, w)
			search.RelaxNewEdge(g, dist, u, v, w)
			search.Distances(g, src, want)
			for x := range want {
				if dist[x] != want[x] {
					t.Fatalf("trial %d after %d insertions: dist[%d] = %v, want %v",
						trial, e+1, x, dist[x], want[x])
				}
			}
		}
	}
}

// TestRelaxNewEdgeUpperBoundInput checks the rebase-soundness half of the
// contract: fed an array of valid upper bounds (not exact distances),
// RelaxNewEdge only ever tightens entries and never drops one below the
// true distance.
func TestRelaxNewEdgeUpperBoundInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(20)
		g := New(n)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, float64(1+rng.Intn(9)))
			}
		}
		src := rng.Intn(n)
		search := NewSearcher(n)
		exactOld := make([]float64, n)
		search.Distances(g, src, exactOld)
		// Loosen the array: random slack on top of the exact distances.
		dist := make([]float64, n)
		for v := range dist {
			dist[v] = exactOld[v] + float64(rng.Intn(3))
		}
		dist[src] = 0
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		w := 0.5
		g.MustAddEdge(u, v, w)
		before := append([]float64(nil), dist...)
		search.RelaxNewEdge(g, dist, u, v, w)
		exact := make([]float64, n)
		search.Distances(g, src, exact)
		for x := range dist {
			if dist[x] > before[x] {
				t.Fatalf("trial %d: relax loosened dist[%d] from %v to %v", trial, x, before[x], dist[x])
			}
			if dist[x] < exact[x] {
				t.Fatalf("trial %d: relax undercut dist[%d] = %v below exact %v", trial, x, dist[x], exact[x])
			}
		}
	}
}
