package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/metric"
)

// CandidateSource supplies candidate edges to the greedy engines in the
// exact greedy scan order: non-decreasing weight, ties broken by (U, V).
// NextBatch returns the next at most maxW candidates and nil once the
// supply is exhausted; the returned slice is only valid until the next
// call. A source may return fewer than maxW candidates while more remain
// (the bucketed sources stop at bucket boundaries), so callers must treat
// only an empty result as end of supply.
//
// The streaming sources exist so the engines' resident set scales with the
// largest weight bucket instead of with the full candidate set: the
// classic pipeline materializes all n(n-1)/2 interpoint pairs and sorts
// them globally before the first greedy decision, while a CandidateSource
// produces and sorts one bounded bucket at a time.
type CandidateSource interface {
	NextBatch(maxW int) []graph.Edge
}

// MaterializedSource adapts an explicit, already-sorted candidate slice to
// the CandidateSource interface. It is the bridge to the classic
// materialize-then-sort pipeline: the engines use it when
// (Metric)ParallelOptions.Materialize is set, and benchmarks use it to
// measure the memory gap against the streamed supplies.
type MaterializedSource struct {
	edges []graph.Edge
	pos   int
}

// NewMaterializedSource wraps sorted, which must already be in greedy scan
// order (graph.SortEdges order). The slice is not copied.
func NewMaterializedSource(sorted []graph.Edge) *MaterializedSource {
	return &MaterializedSource{edges: sorted}
}

// NextBatch returns the next at most maxW candidates.
func (s *MaterializedSource) NextBatch(maxW int) []graph.Edge {
	if maxW < 1 {
		maxW = 1
	}
	if s.pos >= len(s.edges) {
		return nil
	}
	hi := s.pos + maxW
	if hi > len(s.edges) {
		hi = len(s.edges)
	}
	out := s.edges[s.pos:hi]
	s.pos = hi
	return out
}

// pairEnumerator produces the raw (unsorted) candidate pairs of one weight
// range. Pairs must call fn exactly once for every unordered candidate
// pair (u, v) with u < v and weight in the range (see weightInRange), in
// any order. Enumeration must be deterministic in w: repeated calls see
// identical weights, so a pair is assigned to exactly one range of a
// partition.
type pairEnumerator interface {
	Pairs(lo, hi float64, fn func(u, v int, w float64))
}

// Enumerators share graph.WeightInRange as the range predicate, so
// infinite weights (a custom metric's "disconnected" sentinel) flow
// through the counting pass and the dedicated final bucket exactly once
// instead of being dropped — the serial reference examines them too. NaN
// weights are outside every range; the greedy scan order is undefined for
// them on any path.

// metricEnumerator enumerates all n(n-1)/2 pairs of a metric by brute
// force, filtering on the weight range. O(n^2) distance evaluations per
// call and zero retained memory.
type metricEnumerator struct {
	m metric.Metric
}

func (e metricEnumerator) Pairs(lo, hi float64, fn func(u, v int, w float64)) {
	n := e.m.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := e.m.Dist(i, j); graph.WeightInRange(w, lo, hi) {
				fn(i, j, w)
			}
		}
	}
}

// graphEdgeEnumerator enumerates a graph's own edge list, the candidate
// set of the graph engines. One O(m) scan per call, no copy of the list.
type graphEdgeEnumerator struct {
	g *graph.Graph
}

func (e graphEdgeEnumerator) Pairs(lo, hi float64, fn func(u, v int, w float64)) {
	e.g.EdgesInRange(lo, hi, func(ed graph.Edge) {
		fn(ed.U, ed.V, ed.W)
	})
}

// DefaultBucketPairs is the default cap on the number of candidate pairs a
// bucketed source holds materialized at once; see BucketPairs on
// ParallelOptions and MetricParallelOptions. Buckets larger than the cap
// are subdivided into narrower weight ranges before materialization, so
// peak supply memory is O(cap) edges at the price of one extra counting
// pass per subdivision.
const DefaultBucketPairs = 1 << 19

// maxSubranges bounds how many sub-ranges one oversized bucket is split
// into per pass; deeper recursion handles the rest.
const maxSubranges = 64

// interval is one pending weight range [lo, hi) of a bucketed source with
// its known candidate count. noSplit marks ranges that subdivision cannot
// shrink (all candidates share one weight), which are materialized whole.
type interval struct {
	lo, hi  float64
	count   int
	noSplit bool
}

// bucketedSource is the streaming candidate supply: candidates are
// partitioned into geometric weight buckets [2^(e-1), 2^e) by one counting
// pass, and only the active bucket is ever materialized and sorted —
// O(B log B) per bucket instead of one global O(N log N) sort, with peak
// memory O(max bucket) instead of O(N) for N candidates. Buckets larger
// than cap are subdivided into narrower equal-width ranges (an extra
// counting pass each) until they fit, so the cap really is the peak.
type bucketedSource struct {
	enum   pairEnumerator
	cap    int
	queue  []interval
	bucket []graph.Edge
	pos    int
	opened bool
	// alloc is the bucket buffer's target capacity, fixed at open time to
	// min(cap, largest bucket count) so one backing array serves every
	// bucket without repeated regrowth garbage.
	alloc int
	// peak tracks the largest materialized bucket, for benchmarks.
	peak int
}

// newBucketedSource wraps enum with bucket-size cap bucketPairs. With
// bucketPairs <= 0 the cap is chosen at open time as
// max(DefaultBucketPairs, total/32): large instances trade a slightly
// larger peak bucket for far fewer subdivision passes.
func newBucketedSource(enum pairEnumerator, bucketPairs int) *bucketedSource {
	if bucketPairs < 0 {
		bucketPairs = 0
	}
	return &bucketedSource{enum: enum, cap: bucketPairs}
}

// NewMetricSource returns the streaming candidate supply over all
// n(n-1)/2 interpoint pairs of m in greedy scan order. Euclidean metrics
// get the grid-bucketed enumerator of internal/geom, which produces a
// weight bucket by scanning only grid cells within the bucket's distance —
// farther pairs are never touched; all other metrics get the brute-force
// enumerator (one O(n^2) distance pass per bucket, still O(bucket)
// memory). bucketPairs <= 0 selects DefaultBucketPairs.
func NewMetricSource(m metric.Metric, bucketPairs int) CandidateSource {
	if eu, ok := m.(*metric.Euclidean); ok && eu.N() > 0 {
		pts := make([][]float64, eu.N())
		for i := range pts {
			pts[i] = eu.Point(i)
		}
		// Weights come from m.Dist, the same call the materialized
		// pipeline makes, so streamed weights are bit-identical; the grid
		// only decides which pairs to test.
		return newBucketedSource(geom.NewGridEnumerator(pts, m.Dist), bucketPairs)
	}
	return newBucketedSource(metricEnumerator{m: m}, bucketPairs)
}

// NewGraphEdgeSource returns the streaming supply over g's edge list in
// greedy scan order. It replaces the sorted O(m) copy of SortedEdges with
// per-bucket collection: one O(m) counting pass, then for each weight
// bucket an O(m) filter pass plus an O(B log B) sort of just that bucket.
// bucketPairs <= 0 selects DefaultBucketPairs.
func NewGraphEdgeSource(g *graph.Graph, bucketPairs int) CandidateSource {
	return newBucketedSource(graphEdgeEnumerator{g: g}, bucketPairs)
}

// open runs the single counting pass that partitions the candidate weights
// into geometric buckets keyed by binary exponent: bucket e holds weights
// in [2^(e-1), 2^e). Exponent extraction is exactly monotone in the
// weight, so bucket order is scan order; zero weights (degenerate inputs)
// get a dedicated first bucket.
func (s *bucketedSource) open() {
	s.opened = true
	const expOffset = 1075 // lowest subnormal exponent from Frexp is -1074
	var counts [expOffset + 1025]int
	zeros, infs := 0, 0
	s.enum.Pairs(0, math.Inf(1), func(u, v int, w float64) {
		switch {
		case w == 0:
			zeros++
		case math.IsInf(w, 1):
			infs++
		default:
			_, e := math.Frexp(w)
			counts[e+expOffset]++
		}
	})
	first := math.Inf(1)
	total := zeros + infs
	for e := range counts {
		total += counts[e]
	}
	if s.cap == 0 {
		s.cap = DefaultBucketPairs
		if auto := total / 32; auto > s.cap {
			s.cap = auto
		}
	}
	for e := range counts {
		if counts[e] == 0 {
			continue
		}
		lo := math.Ldexp(1, e-expOffset-1)
		hi := math.Ldexp(1, e-expOffset)
		if lo < first {
			first = lo
		}
		s.queue = append(s.queue, interval{lo: lo, hi: hi, count: counts[e]})
	}
	if zeros > 0 {
		// Cap below +Inf so the zero bucket can never swallow the
		// infinite-weight bucket when no finite weights exist.
		if math.IsInf(first, 1) {
			first = math.MaxFloat64
		}
		s.queue = append([]interval{{lo: 0, hi: first, count: zeros, noSplit: true}}, s.queue...)
	}
	if infs > 0 {
		// Infinite weights scan last, after every finite bucket.
		s.queue = append(s.queue, interval{lo: math.Inf(1), hi: math.Inf(1), count: infs, noSplit: true})
	}
	for _, iv := range s.queue {
		if iv.count > s.alloc {
			s.alloc = iv.count
		}
	}
	if s.alloc > s.cap {
		s.alloc = s.cap // oversized buckets are subdivided before collection
	}
}

// refill materializes the next non-empty bucket into s.bucket, subdividing
// oversized weight ranges first. Reports false when the supply is done.
func (s *bucketedSource) refill() bool {
	for len(s.queue) > 0 {
		iv := s.queue[0]
		s.queue = s.queue[1:]
		if iv.count == 0 {
			continue
		}
		if iv.count > s.cap && !iv.noSplit {
			if sub := s.split(iv); sub != nil {
				s.queue = append(sub, s.queue...)
				continue
			}
			// Unsplittable (weights too close); fall through and
			// materialize whole.
		}
		if cap(s.bucket) < iv.count {
			// Allocate at the open-time target so later (larger) buckets
			// reuse the same backing array instead of leaving a trail of
			// garbage; only unsplittable tie spikes can exceed it.
			want := s.alloc
			if iv.count > want {
				want = iv.count
			}
			s.bucket = make([]graph.Edge, 0, want)
		}
		s.bucket = s.bucket[:0]
		s.enum.Pairs(iv.lo, iv.hi, func(u, v int, w float64) {
			s.bucket = append(s.bucket, graph.Edge{U: u, V: v, W: w})
		})
		if len(s.bucket) == 0 {
			continue
		}
		graph.SortEdges(s.bucket)
		s.pos = 0
		if len(s.bucket) > s.peak {
			s.peak = len(s.bucket)
		}
		return true
	}
	return false
}

// split subdivides iv into up to maxSubranges equal-width sub-ranges with
// one counting pass, returning them in weight order. It returns nil when
// the width cannot be subdivided further — boundaries collapse or the
// range is already within relative rounding width of a single weight
// (a tie spike, which no weight partition can split below the cap). A
// child that absorbs the whole parent is re-split on its narrower range
// when popped, so skewed distributions still converge to the cap; the
// width guard bounds that recursion to a few dozen counting passes.
func (s *bucketedSource) split(iv interval) []interval {
	if iv.hi-iv.lo <= iv.lo*1e-12 {
		return nil
	}
	k := (iv.count + s.cap - 1) / s.cap
	if k > maxSubranges {
		k = maxSubranges
	}
	bounds := make([]float64, k+1)
	bounds[0], bounds[k] = iv.lo, iv.hi
	for j := 1; j < k; j++ {
		bounds[j] = iv.lo + (iv.hi-iv.lo)*float64(j)/float64(k)
	}
	for j := 1; j <= k; j++ {
		if !(bounds[j] > bounds[j-1]) {
			return nil
		}
	}
	counts := make([]int, k)
	s.enum.Pairs(iv.lo, iv.hi, func(u, v int, w float64) {
		// Locate the sub-range with lo <= w < hi; ranges partition
		// [iv.lo, iv.hi) so linear probing from the top is exact.
		j := k - 1
		for j > 0 && w < bounds[j] {
			j--
		}
		counts[j]++
	})
	sub := make([]interval, 0, k)
	for j := 0; j < k; j++ {
		if counts[j] == 0 {
			continue
		}
		sub = append(sub, interval{lo: bounds[j], hi: bounds[j+1], count: counts[j]})
	}
	return sub
}

// NextBatch returns the next at most maxW candidates in greedy scan order.
func (s *bucketedSource) NextBatch(maxW int) []graph.Edge {
	if maxW < 1 {
		maxW = 1
	}
	if !s.opened {
		s.open()
	}
	for s.pos >= len(s.bucket) {
		if !s.refill() {
			return nil
		}
	}
	hi := s.pos + maxW
	if hi > len(s.bucket) {
		hi = len(s.bucket)
	}
	out := s.bucket[s.pos:hi]
	s.pos = hi
	return out
}

// PeakBucket reports the largest number of candidates the source has held
// materialized at once — the supply's actual memory high-water mark in
// edges.
func (s *bucketedSource) PeakBucket() int { return s.peak }
