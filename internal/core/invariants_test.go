package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/verify"
)

// TestGreedyScaleInvariance: the greedy spanner's edge set is invariant
// under uniformly scaling the metric (only weights scale), because the
// greedy decision delta_H > t*w is scale-free.
func TestGreedyScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	base := metric.MustEuclidean(gen.UniformPoints(rng, 30, 2))
	scaled, err := metric.NewScaled(base, 37.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GreedyMetric(base, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyMetric(scaled, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ under scaling: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i].U != b.Edges[i].U || a.Edges[i].V != b.Edges[i].V {
			t.Fatalf("edge %d differs: (%d,%d) vs (%d,%d)",
				i, a.Edges[i].U, a.Edges[i].V, b.Edges[i].U, b.Edges[i].V)
		}
		if math.Abs(b.Edges[i].W-37.5*a.Edges[i].W) > 1e-9 {
			t.Fatalf("edge %d weight not scaled", i)
		}
	}
}

// TestGreedyOnLPMetrics: the greedy spanner must be a valid spanner on
// non-Euclidean L_p metrics too (the paper's doubling results are not
// Euclidean-specific).
func TestGreedyOnLPMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := gen.UniformPoints(rng, 30, 3)
	for _, p := range []float64{1, 3, math.Inf(1)} {
		m, err := metric.NewLP(pts, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := GreedyMetricFast(m, 1.4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := verify.MetricSpanner(res.Graph(), m, 1.4, 1e-9); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
	}
}

// TestGreedyOnSnowflake: snowflaked metrics remain metrics, and greedy must
// span them; moreover snowflaking with small alpha makes long-range edges
// relatively cheaper, so spanners get sparser or equal at fixed stretch.
func TestGreedyOnSnowflake(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	base := metric.MustEuclidean(gen.UniformPoints(rng, 40, 2))
	sf, err := metric.NewSnowflake(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyMetricFast(sf, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(res.Graph(), sf, 1.3, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyStretchOneOnMetricIsCompleteMinusRedundant: at t=1 on a metric
// in general position (all triangle inequalities strict), no pair can be
// served by a path, so greedy keeps all n(n-1)/2 edges.
func TestGreedyStretchOneOnMetricKeepsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 15, 2))
	res, err := GreedyMetric(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 15*14/2 {
		t.Fatalf("t=1 greedy kept %d edges, want all %d", res.Size(), 15*14/2)
	}
}

// TestGreedyCollinearPoints: on collinear points the greedy (1+eps)-spanner
// is exactly the path (n-1 consecutive edges), the canonical sanity case.
func TestGreedyCollinearPoints(t *testing.T) {
	pts := make([][]float64, 12)
	for i := range pts {
		pts[i] = []float64{float64(i) * 1.37}
	}
	m := metric.MustEuclidean(pts)
	res, err := GreedyMetric(m, 1.0001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 11 {
		t.Fatalf("collinear greedy kept %d edges, want 11 (the path)", res.Size())
	}
	for _, e := range res.Edges {
		if e.V-e.U != 1 {
			t.Fatalf("non-consecutive edge (%d, %d) on the line", e.U, e.V)
		}
	}
}

// TestGreedySizeDecreasesInEps: for metric greedy, larger eps (larger t)
// never yields more edges.
func TestGreedySizeMonotoneInStretchQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := metric.MustEuclidean(gen.UniformPoints(rng, 18, 2))
		prev := math.MaxInt
		for _, tt := range []float64{1.05, 1.2, 1.5, 2, 3} {
			res, err := GreedyMetricFast(m, tt)
			if err != nil || res.Size() > prev {
				return false
			}
			prev = res.Size()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyUnboundedDegreeGadget: the gadget from gen forces hub degree
// n-1 at matching eps — the motivation for Section 5 of the paper.
func TestGreedyUnboundedDegreeGadget(t *testing.T) {
	const eps = 0.1
	m, err := gen.UnboundedDegreeMetric(3, 7, eps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyMetric(m, 1+eps)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Graph().Degree(0); got != m.N()-1 {
		t.Fatalf("hub degree = %d, want %d (all satellites)", got, m.N()-1)
	}
}

// TestIncrementalMaintainsInvariants audits the maintained spanner after
// every insertion batch: it must be a valid t-spanner of the current
// metric, satisfy the Lemma 3 self-spanner property (it is a genuine
// greedy output at all times), keep its accepted edges in scan order, and
// account for exactly k(k-1)/2 examined candidates.
func TestIncrementalMaintainsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 42, 2))
	const tt = 1.5
	inc, err := NewIncrementalMetric(subMetric(m, 14), tt, MetricParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{15, 20, 28, 42} {
		if err := inc.Insert(subMetric(m, k)); err != nil {
			t.Fatal(err)
		}
		res := mustResult(t, inc)
		if res.N != k {
			t.Fatalf("k=%d: result spans %d points", k, res.N)
		}
		if res.EdgesExamined != k*(k-1)/2 {
			t.Fatalf("k=%d: examined %d candidates, want %d", k, res.EdgesExamined, k*(k-1)/2)
		}
		h := res.Graph()
		if _, err := verify.MetricSpanner(h, subMetric(m, k), tt, 1e-9); err != nil {
			t.Fatalf("k=%d: not a %v-spanner: %v", k, tt, err)
		}
		if v := VerifySelfSpanner(h, tt); len(v) != 0 {
			t.Fatalf("k=%d: self-spanner violations after insertion: %+v", k, v)
		}
		for i := 1; i < len(res.Edges); i++ {
			if res.Edges[i].W < res.Edges[i-1].W {
				t.Fatalf("k=%d: accepted edges out of weight order at %d", k, i)
			}
		}
	}
}

// TestGreedyGraphMetricConsistency: running greedy on a graph vs on its
// induced metric gives spanners with the same stretch guarantee against the
// graph distances (edge sets differ — the metric sees shortcut pairs).
func TestGreedyGraphMetricConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := gen.ErdosRenyi(rng, 25, 0.3, 0.5, 5)
	m, err := metric.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 2.0
	onMetric, err := GreedyMetricFast(m, tt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(onMetric.Graph(), m, tt, 1e-9); err != nil {
		t.Fatal(err)
	}
	onGraph, err := GreedyGraph(g, tt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Spanner(onGraph.Graph(), g, tt, 1e-9); err != nil {
		t.Fatal(err)
	}
}
