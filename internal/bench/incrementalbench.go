package bench

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/persist"
)

// mustIncResult flushes and returns the maintained result; a replay error
// is impossible here (no context, budget, or injected fault is configured
// in the benchmarks), so it is treated as a harness bug.
func mustIncResult(inc *core.IncrementalSpanner) *core.Result {
	res, err := inc.Result()
	if err != nil {
		panic(err)
	}
	return res
}

// The incremental benchmark quantifies the workload the maintained spanner
// opens: interleaved insertions. The baseline policy is what the repo
// offered before — every insertion triggers a from-scratch greedy build on
// the grown point set — so its per-insert cost is one full rebuild. The
// incremental engine instead replays only the disturbed tail of the greedy
// scan per insertion batch; the benchmark reports its amortized per-insert
// cost, checks the final spanner edge-for-edge against the from-scratch
// build, and records MemStats peak/total allocation for both policies,
// following the repeated-run discipline of the other engine benchmarks.

// IncrementalBenchCase is the report for one instance.
type IncrementalBenchCase struct {
	Kind string `json:"kind"`
	// NInitial points are built up front; Inserted more arrive in
	// InsertBatch-sized batches until NFinal.
	NInitial    int     `json:"n_initial"`
	NFinal      int     `json:"n_final"`
	Inserted    int     `json:"inserted"`
	InsertBatch int     `json:"insert_batch"`
	Stretch     float64 `json:"stretch"`
	// SpannerEdges is the final spanner size (identical in both policies).
	SpannerEdges int `json:"spanner_edges"`
	// Rebuild* time one full from-scratch build at NFinal — the cost the
	// rebuild-per-insert policy pays for every single insertion.
	RebuildMS              []float64 `json:"rebuild_ms"`
	RebuildMedianMS        float64   `json:"rebuild_median_ms"`
	RebuildSpreadPct       float64   `json:"rebuild_spread_pct"`
	RebuildPeakAllocBytes  uint64    `json:"rebuild_peak_alloc_bytes"`
	RebuildTotalAllocBytes uint64    `json:"rebuild_total_alloc_bytes"`
	// IncrementalTotalMS times the whole insertion sequence (median over
	// reps); PerInsertMS is that total amortized over Inserted points.
	IncrementalTotalMS         []float64 `json:"incremental_total_ms"`
	IncrementalMedianMS        float64   `json:"incremental_median_ms"`
	IncrementalSpreadPct       float64   `json:"incremental_spread_pct"`
	IncrementalPerInsertMS     float64   `json:"incremental_per_insert_ms"`
	IncrementalPeakAllocBytes  uint64    `json:"incremental_peak_alloc_bytes"`
	IncrementalTotalAllocBytes uint64    `json:"incremental_total_alloc_bytes"`
	// PerInsertSpeedup is RebuildMedianMS / IncrementalPerInsertMS: how
	// many times cheaper an insertion is than the rebuild policy's.
	PerInsertSpeedup float64 `json:"per_insert_speedup"`
	// PerPoint* time the same insertion span delivered as a fine-grained
	// stream (one point per Insert call) under the default
	// replay-every-call policy — InsertBatch times more replays.
	PerPointTotalMS     []float64 `json:"per_point_total_ms"`
	PerPointMedianMS    float64   `json:"per_point_median_ms"`
	PerPointPerInsertMS float64   `json:"per_point_per_insert_ms"`
	// Coalesced* time the identical fine-grained stream under
	// IncrementalPolicy{MinBatch: InsertBatch}: replays are deferred
	// until InsertBatch points are pending, so the stream amortizes like
	// the batched calls without the caller batching anything.
	CoalescedTotalMS     []float64 `json:"coalesced_total_ms"`
	CoalescedMedianMS    float64   `json:"coalesced_median_ms"`
	CoalescedPerInsertMS float64   `json:"coalesced_per_insert_ms"`
	// CoalesceSpeedup is PerPointMedianMS / CoalescedMedianMS: what the
	// batching policy recovers on fine-grained insert streams.
	CoalesceSpeedup float64 `json:"coalesce_speedup"`
	// PeakAllocRatio is RebuildPeakAllocBytes over
	// IncrementalPeakAllocBytes (the insertion sequence's peak).
	PeakAllocRatio float64 `json:"peak_alloc_ratio"`
	// Identical records edge-for-edge equality of the final maintained
	// spanner with the from-scratch build on the union, every rep.
	Identical bool `json:"identical"`
}

// IncrementalBenchReport is the top-level BENCH_incremental.json document.
type IncrementalBenchReport struct {
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Date       string                 `json:"date"`
	Reps       int                    `json:"reps"`
	Workers    int                    `json:"workers"`
	Cases      []IncrementalBenchCase `json:"cases"`
}

// IncrementalBench times the maintained incremental spanner against the
// rebuild-per-insert policy. workers selects the engine worker count
// (<= 0 uses 1). Small scale runs the n=500 instance; Full adds the
// n=4000 acceptance instance.
func IncrementalBench(ctx context.Context, scale Scale, seed int64, reps, workers int) (*Table, *IncrementalBenchReport, error) {
	if reps < 3 {
		reps = 3
	}
	if workers <= 0 {
		workers = 1
	}
	tab := &Table{
		Title: "INCREMENTAL-BENCH: maintained spanner vs rebuild-per-insert",
		Header: []string{"kind", "n0->n", "batch", "policy", "per-insert ms", "spread %", "speedup",
			"peak MB", "total MB", "identical"},
		Caption: "Rebuild = one from-scratch greedy build per inserted point (its per-insert cost is one\n" +
			"full build at n); incremental = the maintained spanner replaying only the disturbed scan\n" +
			"tail per batch, amortized over the inserted points. per-point / coalesced deliver the same\n" +
			"span one point per Insert call: immediately replayed vs deferred by\n" +
			"IncrementalPolicy{MinBatch: batch}, which recovers the batched amortization without the\n" +
			"caller batching. peak/total MB from a dedicated non-timed pass.",
	}
	report := &IncrementalBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Reps:       reps,
		Workers:    workers,
	}
	type instance struct {
		nFinal, inserted, batch int
	}
	instances := []instance{{500, 32, 8}}
	if scale == Full {
		instances = append(instances, instance{4000, 64, 16})
	}
	rng := rand.New(rand.NewSource(seed))
	for _, inst := range instances {
		const stretch = 1.5
		pts := gen.UniformPoints(rng, inst.nFinal, 2)
		full := metric.MustEuclidean(pts)
		n0 := inst.nFinal - inst.inserted
		c := IncrementalBenchCase{
			Kind: "euclidean", NInitial: n0, NFinal: inst.nFinal,
			Inserted: inst.inserted, InsertBatch: inst.batch,
			Stretch: stretch, Identical: true,
		}
		opts := core.MetricParallelOptions{Workers: workers, Ctx: ctx}

		// Rebuild policy: the per-insert cost is one full build at n.
		var ref *core.Result
		for r := 0; r < reps; r++ {
			start := time.Now()
			res, err := core.GreedyMetricFastParallelOpts(full, stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			c.RebuildMS = append(c.RebuildMS, time.Since(start).Seconds()*1000)
			ref = res
		}
		c.SpannerEdges = ref.Size()
		c.RebuildMedianMS = median(c.RebuildMS)
		c.RebuildSpreadPct = spreadPct(c.RebuildMS)
		peak, totalAlloc, err := measureAlloc(func() error {
			_, err := core.GreedyMetricFastParallelOpts(full, stretch, opts)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		c.RebuildPeakAllocBytes, c.RebuildTotalAllocBytes = peak, totalAlloc

		// Incremental policy: build n0 up front (untimed — both policies
		// start from an existing spanner), then time the batched insertion
		// sequence to nFinal.
		subsets := make([]metric.Metric, 0, inst.inserted/inst.batch+1)
		for k := n0 + inst.batch; k < inst.nFinal; k += inst.batch {
			subsets = append(subsets, metric.MustEuclidean(pts[:k]))
		}
		subsets = append(subsets, full)
		for r := 0; r < reps; r++ {
			inc, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n0]), stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			start := time.Now()
			for _, union := range subsets {
				if err := inc.Insert(union); err != nil {
					return nil, nil, err
				}
			}
			c.IncrementalTotalMS = append(c.IncrementalTotalMS, time.Since(start).Seconds()*1000)
			c.Identical = c.Identical && sameOutput(ref, mustIncResult(inc))
		}
		c.IncrementalMedianMS = median(c.IncrementalTotalMS)
		c.IncrementalSpreadPct = spreadPct(c.IncrementalTotalMS)
		c.IncrementalPerInsertMS = c.IncrementalMedianMS / float64(inst.inserted)
		// The alloc probe covers the insertion sequence only: the initial
		// build's live state is the resident baseline both policies start
		// an insertion from, so the recorded peak is the replay transient —
		// the figure comparable to the rebuild policy's build transient.
		probe, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n0]), stretch, opts)
		if err != nil {
			return nil, nil, err
		}
		peak, totalAlloc, err = measureAlloc(func() error {
			for _, union := range subsets {
				if err := probe.Insert(union); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		c.IncrementalPeakAllocBytes, c.IncrementalTotalAllocBytes = peak, totalAlloc
		if c.IncrementalPerInsertMS > 0 {
			c.PerInsertSpeedup = c.RebuildMedianMS / c.IncrementalPerInsertMS
		}
		if c.IncrementalPeakAllocBytes > 0 {
			c.PeakAllocRatio = float64(c.RebuildPeakAllocBytes) / float64(c.IncrementalPeakAllocBytes)
		}

		// Fine-grained stream: the same insertion span, one point per
		// Insert call, replayed immediately (the cost a caller who cannot
		// batch pays today) and under the coalescing policy (MinBatch
		// recovers the batched amortization automatically).
		pointSubsets := make([]metric.Metric, 0, inst.inserted)
		for nn := n0 + 1; nn <= inst.nFinal; nn++ {
			pointSubsets = append(pointSubsets, metric.MustEuclidean(pts[:nn]))
		}
		stream := func(policy core.IncrementalPolicy) (*core.IncrementalSpanner, float64, error) {
			inc, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n0]), stretch, opts)
			if err != nil {
				return nil, 0, err
			}
			inc.SetPolicy(policy)
			start := time.Now()
			for _, union := range pointSubsets {
				if err := inc.Insert(union); err != nil {
					return nil, 0, err
				}
			}
			inc.Flush()
			return inc, time.Since(start).Seconds() * 1000, nil
		}
		for r := 0; r < reps; r++ {
			inc, ms, err := stream(core.IncrementalPolicy{})
			if err != nil {
				return nil, nil, err
			}
			c.PerPointTotalMS = append(c.PerPointTotalMS, ms)
			c.Identical = c.Identical && sameOutput(ref, mustIncResult(inc))
			inc, ms, err = stream(core.IncrementalPolicy{MinBatch: inst.batch})
			if err != nil {
				return nil, nil, err
			}
			c.CoalescedTotalMS = append(c.CoalescedTotalMS, ms)
			c.Identical = c.Identical && sameOutput(ref, mustIncResult(inc))
		}
		c.PerPointMedianMS = median(c.PerPointTotalMS)
		c.PerPointPerInsertMS = c.PerPointMedianMS / float64(inst.inserted)
		c.CoalescedMedianMS = median(c.CoalescedTotalMS)
		c.CoalescedPerInsertMS = c.CoalescedMedianMS / float64(inst.inserted)
		if c.CoalescedMedianMS > 0 {
			c.CoalesceSpeedup = c.PerPointMedianMS / c.CoalescedMedianMS
		}
		span := itoa(n0) + "->" + itoa(inst.nFinal)
		tab.AddRow(c.Kind, span, itoa(inst.batch), "rebuild",
			f2(c.RebuildMedianMS), f2(c.RebuildSpreadPct), "1.00",
			mb(c.RebuildPeakAllocBytes), mb(c.RebuildTotalAllocBytes), "ref")
		tab.AddRow(c.Kind, span, itoa(inst.batch), "incremental",
			f2(c.IncrementalPerInsertMS), f2(c.IncrementalSpreadPct), f2(c.PerInsertSpeedup),
			mb(c.IncrementalPeakAllocBytes), mb(c.IncrementalTotalAllocBytes), yesNo(c.Identical))
		tab.AddRow(c.Kind, span, "1", "per-point",
			f2(c.PerPointPerInsertMS), f2(spreadPct(c.PerPointTotalMS)), "1.00",
			"-", "-", yesNo(c.Identical))
		tab.AddRow(c.Kind, span, "1", "coalesced",
			f2(c.CoalescedPerInsertMS), f2(spreadPct(c.CoalescedTotalMS)), f2(c.CoalesceSpeedup),
			"-", "-", yesNo(c.Identical))
		report.Cases = append(report.Cases, c)
	}
	return tab, report, nil
}

// WriteJSON writes the report to path, pretty-printed, atomically
// (temp file + rename), so an interrupted run never damages a previous
// report at the same path.
func (r *IncrementalBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
